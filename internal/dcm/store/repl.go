// Journal replication: the primary manager's store streams every
// applied record to a hot-standby, so a failover promotes a state dir
// that is (up to the acknowledged cursor) a byte-faithful copy of the
// primary's intent.
//
// The session protocol is deliberately tiny and reuses the journal's
// crc32-framed JSON lines as its wire format:
//
//	standby → primary  HELLO{gen, seq}   resume claim: "I hold your
//	                                     incarnation gen up to seq"
//	primary → standby  SNAP{gen, seq, state}  full resync baseline
//	primary → standby  REC{gen, seq, rec}     one journal record
//	standby → primary  ACK{seq}               cursor acknowledgement
//
// A resume claim is honoured when the generation matches and the
// cursor is still inside the primary's retained record ring; anything
// else — first contact, a restarted primary (new gen), or a cursor
// that fell behind the ring — degrades to a full snapshot. The standby
// applies records through Store.Apply, so the replicated journal is
// fsync'd line-framed records with the exact torn-tail recovery rules
// of the primary's own crash path.
//
// The core (Feed, Replica) is pump-driven and transport-free: the
// chaos harness drives it tick-by-tick for bit-identical replays, and
// repl_net.go wraps it in TCP for production dcmd.
package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// ReplRetain is how many applied records the primary keeps for resume;
// a standby whose cursor lags further takes a full snapshot instead.
const ReplRetain = 1024

// Replication frame kinds.
const (
	ReplHello = "hello"
	ReplSnap  = "snap"
	ReplRec   = "rec"
	ReplAck   = "ack"
)

// ReplFrame is one replication protocol message.
type ReplFrame struct {
	Kind string `json:"kind"`
	// Gen identifies the primary store incarnation the frame belongs
	// to; records from different generations never interleave.
	Gen uint64 `json:"gen,omitempty"`
	// Seq is the record cursor: for REC the record's sequence number,
	// for SNAP the sequence the snapshot includes up to, for HELLO the
	// standby's resume claim, for ACK the highest contiguous sequence
	// the standby has durably applied.
	Seq   uint64  `json:"seq,omitempty"`
	Rec   *Record `json:"rec,omitempty"`
	State *State  `json:"state,omitempty"`
}

// EncodeReplFrame formats f with the journal's crc32 line framing.
func EncodeReplFrame(f ReplFrame) ([]byte, error) {
	payload, err := json.Marshal(f)
	if err != nil {
		return nil, fmt.Errorf("store: encoding repl frame: %w", err)
	}
	return frameLine(payload), nil
}

// DecodeReplFrame parses one framed replication line (without or with
// its trailing newline), verifying the checksum.
func DecodeReplFrame(line string) (ReplFrame, bool) {
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
	}
	payload, ok := unframeLine(line)
	if !ok {
		return ReplFrame{}, false
	}
	var f ReplFrame
	if err := json.Unmarshal(payload, &f); err != nil {
		return ReplFrame{}, false
	}
	if f.Kind != ReplHello && f.Kind != ReplSnap && f.Kind != ReplRec && f.Kind != ReplAck {
		return ReplFrame{}, false
	}
	return f, true
}

// SetGen stamps this store incarnation's replication generation. A
// primary must pick a value no store lifetime has ever served before
// (dcmd derives it from the lease epoch and the state dir's open
// counter via SetGenForEpoch; chaos uses its strictly-increasing
// epochs directly) so standbys that replicated from an earlier
// incarnation resync rather than resume into a diverged log.
func (s *Store) SetGen(g uint64) {
	s.mu.Lock()
	s.gen = g
	s.mu.Unlock()
}

// genIncarnationBits is the width of the incarnation field inside a
// generation built by SetGenForEpoch; the fencing epoch fills the
// high bits.
const genIncarnationBits = 32

// SetGenForEpoch stamps a generation unique to this (epoch,
// incarnation) pair: the lease epoch in the high bits, the state
// dir's durable open counter in the low. Epochs are unique per grant
// across an HA pair (the flocked lease bumps on every change of
// holder), and the incarnation is unique per Open of this dir, so no
// two primary lifetimes ever share a generation — not even the same
// member crash-restarting inside its own lease TTL, whose live
// renewal preserves the epoch while the store's record sequence
// resets. A standby resuming across either boundary renegotiates from
// a snapshot instead of splicing incarnations.
func (s *Store) SetGenForEpoch(epoch uint64) {
	s.mu.Lock()
	s.gen = epoch<<genIncarnationBits | s.inc&(1<<genIncarnationBits-1)
	s.mu.Unlock()
}

// Gen returns the replication generation (zero until SetGen).
func (s *Store) Gen() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Seq returns how many records this incarnation has applied.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// replSinceLocked returns the applied records after cursor, or ok
// false when the cursor is outside the retained window (ahead of seq,
// or evicted from the ring) and the session must fall back to a
// snapshot.
func (s *Store) replSinceLocked(cursor uint64) ([]Record, bool) {
	if cursor > s.seq || cursor < s.recentFirst {
		return nil, false
	}
	return s.recent[cursor-s.recentFirst:], true
}

// ResetTo atomically replaces the store's state with a replicated
// snapshot: the new state is written as the on-disk snapshot and the
// journal truncated, exactly as a compaction would. Used by a standby
// taking a full resync.
func (s *Store) ResetTo(state State) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	s.state = state.clone()
	return s.compactLocked()
}

// Feed is the primary-side half of one replication session: it turns
// a standby's HELLO into the frame stream that brings it up to date,
// then tracks its acknowledgement cursor. One Feed per standby
// connection; a reconnect makes a new Feed from a fresh HELLO.
type Feed struct {
	st *Store

	mu       sync.Mutex
	claimGen uint64
	claimSeq uint64
	synced   bool
	cursor   uint64 // next frames start after this sequence
	acked    uint64
}

// NewFeed starts a session from the standby's HELLO resume claim.
func (s *Store) NewFeed(hello ReplFrame) *Feed {
	return &Feed{st: s, claimGen: hello.Gen, claimSeq: hello.Seq}
}

// Pending returns the next at-most-max frames for the standby. The
// first call decides between resuming from the claimed cursor and a
// full snapshot; a cursor that falls out of the retained ring
// mid-session (the standby stalled through a write burst) degrades to
// a fresh snapshot rather than an error.
func (f *Feed) Pending(max int) ([]ReplFrame, error) {
	if max <= 0 {
		max = ReplRetain
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.st
	s.mu.Lock()
	defer s.mu.Unlock()
	if !f.synced {
		if s.gen != 0 && f.claimGen == s.gen && f.claimSeq <= s.seq && f.claimSeq >= s.recentFirst {
			f.cursor = f.claimSeq
		} else {
			f.synced = true
			return []ReplFrame{f.snapLocked()}, nil
		}
		f.synced = true
	}
	recs, ok := s.replSinceLocked(f.cursor)
	if !ok {
		return []ReplFrame{f.snapLocked()}, nil
	}
	if len(recs) > max {
		recs = recs[:max]
	}
	frames := make([]ReplFrame, 0, len(recs))
	for i := range recs {
		r := recs[i]
		frames = append(frames, ReplFrame{Kind: ReplRec, Gen: s.gen, Seq: f.cursor + uint64(i) + 1, Rec: &r})
	}
	f.cursor += uint64(len(recs))
	return frames, nil
}

// snapLocked builds a full-resync frame and advances the session
// cursor past it. Both f.mu and f.st.mu must be held.
func (f *Feed) snapLocked() ReplFrame {
	snap := f.st.state.clone()
	f.cursor = f.st.seq
	return ReplFrame{Kind: ReplSnap, Gen: f.st.gen, Seq: f.st.seq, State: &snap}
}

// Ack records the standby's acknowledgement cursor.
func (f *Feed) Ack(fr ReplFrame) {
	if fr.Kind != ReplAck {
		return
	}
	f.mu.Lock()
	if fr.Seq > f.acked {
		f.acked = fr.Seq
	}
	f.mu.Unlock()
}

// Lag reports how many applied records the standby has yet to
// acknowledge.
func (f *Feed) Lag() uint64 {
	f.mu.Lock()
	acked := f.acked
	f.mu.Unlock()
	seq := f.st.Seq()
	if acked > seq {
		return 0
	}
	return seq - acked
}

// Replica is the standby-side half: it applies the primary's stream
// into a local store (journaled and fsync'd per record, so the
// replicated log inherits the crash-recovery torn-tail rules) and
// produces cursor acknowledgements.
type Replica struct {
	st *Store

	mu     sync.Mutex
	gen    uint64
	cursor uint64
	// metaPath, when non-empty, is where progress is persisted so a
	// restarted standby process recovers its resume point
	// (RecoverReplica). Empty for in-memory replicas (tests, chaos).
	metaPath string
}

// NewReplica starts a replica with no resume claim: the first HELLO
// carries gen 0, which the primary answers with a full snapshot.
func NewReplica(st *Store) *Replica { return &Replica{st: st} }

// NewReplicaAt resumes a replica whose local store already holds the
// primary's generation gen up to cursor — a standby process restart
// that recovered its replicated journal. An overstated cursor is the
// caller's bug; an understated one only costs re-sent (idempotently
// duplicate-dropped) records.
func NewReplicaAt(st *Store, gen, cursor uint64) *Replica {
	return &Replica{st: st, gen: gen, cursor: cursor}
}

// ReplicaMetaFileName is the sidecar recording a standby's replication
// resume point inside its state dir.
const ReplicaMetaFileName = "replica.json"

// replicaMeta is the persisted resume point.
type replicaMeta struct {
	Gen    uint64 `json:"gen"`
	Cursor uint64 `json:"cursor"`
}

// RecoverReplica resumes a replica over a reopened standby state dir:
// the {gen, cursor} sidecar persisted alongside earlier progress
// becomes the resume claim, so a restarted standby both skips a full
// resync when the primary still runs and — because its generation is
// non-zero — counts as synced enough to contend for the lease when
// the primary is gone. A missing or corrupt sidecar starts from
// scratch (gen 0 → full snapshot). The sidecar is only ever written
// after the record it names was fsync'd into the local journal, so
// the recovered cursor never overstates durable state; it may
// understate it (per-record writes are best-effort), which merely
// re-sends a suffix of full-overwrite records that replays
// idempotently.
func RecoverReplica(st *Store, dir string) *Replica {
	r := &Replica{st: st, metaPath: filepath.Join(dir, ReplicaMetaFileName)}
	if b, err := os.ReadFile(r.metaPath); err == nil {
		var m replicaMeta
		if json.Unmarshal(b, &m) == nil {
			r.gen, r.cursor = m.Gen, m.Cursor
		}
	}
	return r
}

// ClearReplicaMeta removes dir's replication resume sidecar. A standby
// promoting to primary must drop its claim: its store is about to
// journal records of its own under a new generation, and carrying the
// old claim into a later standby lifetime could splice that local
// history into a resumed session.
func ClearReplicaMeta(dir string) error {
	if err := os.Remove(filepath.Join(dir, ReplicaMetaFileName)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// saveMetaLocked persists the resume point (r.mu held). Best-effort by
// design: a lost or stale sidecar can only understate progress or miss
// a generation change, both of which degrade to re-sent records or a
// full resync — never divergence — so failures are not propagated into
// the replication session.
func (r *Replica) saveMetaLocked() {
	if r.metaPath == "" {
		return
	}
	b, err := json.Marshal(replicaMeta{Gen: r.gen, Cursor: r.cursor})
	if err != nil {
		return
	}
	dir := filepath.Dir(r.metaPath)
	tmp, err := os.CreateTemp(dir, "replica-*.tmp")
	if err != nil {
		return
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(b); err == nil {
		err = tmp.Close()
	} else {
		tmp.Close()
	}
	if err != nil {
		os.Remove(tmpName)
		return
	}
	if os.Rename(tmpName, r.metaPath) != nil {
		os.Remove(tmpName)
	}
}

// Hello builds the resume claim that opens a session.
func (r *Replica) Hello() ReplFrame {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReplFrame{Kind: ReplHello, Gen: r.gen, Seq: r.cursor}
}

// Handle applies one primary frame and returns the acknowledgement to
// send back (nil for frames that carry no progress). A generation
// mismatch or sequence gap is an error: the session is broken and the
// standby must reconnect with a fresh Hello.
func (r *Replica) Handle(fr ReplFrame) (*ReplFrame, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch fr.Kind {
	case ReplSnap:
		if fr.State == nil {
			return nil, fmt.Errorf("store: snap frame without state")
		}
		if err := r.st.ResetTo(*fr.State); err != nil {
			return nil, err
		}
		r.gen, r.cursor = fr.Gen, fr.Seq
		r.saveMetaLocked()
		return &ReplFrame{Kind: ReplAck, Seq: r.cursor}, nil
	case ReplRec:
		if fr.Gen != r.gen {
			return nil, fmt.Errorf("store: repl generation changed %d -> %d without snapshot", r.gen, fr.Gen)
		}
		if fr.Seq <= r.cursor {
			// Duplicate from an understated resume; already applied.
			return &ReplFrame{Kind: ReplAck, Seq: r.cursor}, nil
		}
		if fr.Seq != r.cursor+1 {
			return nil, fmt.Errorf("store: repl sequence gap: have %d, got %d", r.cursor, fr.Seq)
		}
		if fr.Rec == nil {
			return nil, fmt.Errorf("store: rec frame without record")
		}
		if err := r.st.Apply(*fr.Rec); err != nil {
			return nil, err
		}
		r.cursor = fr.Seq
		r.saveMetaLocked()
		return &ReplFrame{Kind: ReplAck, Seq: r.cursor}, nil
	default:
		return nil, fmt.Errorf("store: unexpected repl frame kind %q", fr.Kind)
	}
}

// Gen returns the primary generation the replica is tracking.
func (r *Replica) Gen() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen
}

// Cursor returns the highest contiguous sequence applied.
func (r *Replica) Cursor() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cursor
}

// ReplayFrom folds records onto a copy of base — the state a replica
// must hold after applying them. Exported for the chaos harness's
// replica_convergence check.
func ReplayFrom(base State, records []Record) State {
	st := base.clone()
	if st.Nodes == nil {
		st.Nodes = make(map[string]NodeRecord)
	}
	for _, r := range records {
		st.apply(r)
	}
	return st
}
