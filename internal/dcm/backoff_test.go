package dcm

import (
	"testing"
	"time"
)

// envelope reproduces backoff's deterministic pre-jitter delay: capped
// doubling of the base. The jittered result must land in
// [envelope/2, envelope].
func envelope(base, max time.Duration, failures int) time.Duration {
	d := base
	for i := 1; i < failures && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d
}

// TestBackoffProperties pins the redial backoff's contract: delays are
// positive, bounded by RetryMaxDelay, within the jitter envelope whose
// ceiling is monotone in failure count, and stable for absurdly large
// counts (the doubling loop must saturate, not overflow).
func TestBackoffProperties(t *testing.T) {
	m := NewManager(func(addr string) (BMC, error) { return &flakyBMC{}, nil })
	defer m.Close()
	m.RetryBaseDelay = 10 * time.Millisecond
	m.RetryMaxDelay = 50 * time.Millisecond

	counts := make([]int, 0, 70)
	for f := 1; f <= 64; f++ {
		counts = append(counts, f)
	}
	// Large counts: doubling naively for these would overflow int64
	// many times over; the loop must saturate at the cap instead.
	counts = append(counts, 1<<16, 1<<20, 1<<30, 1<<40, 1<<62)

	m.mu.Lock()
	defer m.mu.Unlock()
	prevEnv := time.Duration(0)
	for _, f := range counts {
		env := envelope(m.RetryBaseDelay, m.RetryMaxDelay, f)
		if env < prevEnv {
			t.Fatalf("backoff envelope not monotone: f=%d env=%v < prev %v", f, env, prevEnv)
		}
		prevEnv = env
		for trial := 0; trial < 32; trial++ {
			d := m.backoff(f)
			if d <= 0 {
				t.Fatalf("backoff(%d) = %v, want > 0", f, d)
			}
			if d > m.RetryMaxDelay {
				t.Fatalf("backoff(%d) = %v exceeds RetryMaxDelay %v", f, d, m.RetryMaxDelay)
			}
			if d < env/2 || d > env {
				t.Fatalf("backoff(%d) = %v outside jitter envelope [%v, %v]", f, d, env/2, env)
			}
		}
	}
}

// TestBackoffZeroConfig: an unconfigured manager falls back to package
// defaults rather than producing zero (busy-loop) delays.
func TestBackoffZeroConfig(t *testing.T) {
	m := NewManager(func(addr string) (BMC, error) { return &flakyBMC{}, nil })
	defer m.Close()
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range []int{1, 7, 1 << 40} {
		d := m.backoff(f)
		if d <= 0 || d > DefaultRetryMaxDelay {
			t.Errorf("zero-config backoff(%d) = %v, want in (0, %v]", f, d, DefaultRetryMaxDelay)
		}
	}
}
