package dcm

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"nodecap/internal/telemetry"
)

// Control-plane protocol: newline-delimited JSON requests and
// responses over TCP, consumed by the dcmctl command-line tool.

// Default control-plane timeouts.
const (
	// DefaultIdleTimeout bounds how long a server-side handler waits
	// for the next request on an open connection.
	DefaultIdleTimeout = 2 * time.Minute
	// DefaultCallTimeout bounds one whole Call round trip.
	DefaultCallTimeout = time.Minute
)

// Request is one control-plane operation.
type Request struct {
	Op string `json:"op"` // "add", "remove", "nodes", "setcap", "settier", "budget", "poll", "history", "trace", "leader"

	Name string  `json:"name,omitempty"`
	Addr string  `json:"addr,omitempty"`
	Cap  float64 `json:"cap,omitempty"`
	Tier string  `json:"tier,omitempty"` // settier: "high" or "low"

	Budget float64  `json:"budget,omitempty"`
	Group  []string `json:"group,omitempty"`
	// Weights optionally overrides per-node priority weights for a
	// budget op; nodes not listed fall back to their tier's default.
	Weights map[string]float64 `json:"weights,omitempty"`

	Limit int `json:"limit,omitempty"` // history/trace tail length

	// Since is the trace follow cursor: return events with Seq >= Since
	// (0 means the tail). Name filters trace ops to one node.
	Since uint64 `json:"since,omitempty"`

	// Epoch, when non-zero, is the fencing epoch the client believes
	// is current; a mutating op whose epoch disagrees with the serving
	// manager's is rejected rather than applied by the wrong leader.
	Epoch uint64 `json:"epoch,omitempty"`
}

// Response carries the result.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`

	Nodes   []NodeStatus      `json:"nodes,omitempty"`
	Allocs  []Allocation      `json:"allocs,omitempty"`
	History []Sample          `json:"history,omitempty"`
	Trace   []telemetry.Event `json:"trace,omitempty"`

	// Role/Epoch report the serving manager's HA state ("nodes" and
	// "leader" ops); Fenced is set when the manager has had a push
	// rejected for a stale epoch — it is not who it thinks it is.
	Role   string `json:"role,omitempty"`
	Epoch  uint64 `json:"epoch,omitempty"`
	Fenced bool   `json:"fenced,omitempty"`

	// Shards reports per-shard state ("shards" op, sharded daemons).
	Shards []ShardStatus `json:"shards,omitempty"`
}

// ShardStatus is one leaf shard's state as reported by a sharded
// (aggregator) control plane. It lives in this package — not
// internal/shard — because the wire Response carries it and shard
// already imports dcm.
type ShardStatus struct {
	Leaf        string  `json:"leaf"`
	Alive       bool    `json:"alive"`
	Epoch       uint64  `json:"epoch"`
	Nodes       int     `json:"nodes"`
	BudgetWatts float64 `json:"budget_watts"`
	Infeasible  bool    `json:"infeasible"`
}

// Server exposes a Manager over the control-plane protocol.
type Server struct {
	// IdleTimeout bounds the wait for a client's next request (and
	// the write of each response), so an idle or stalled dcmctl
	// connection cannot pin a handler goroutine forever. Zero means
	// DefaultIdleTimeout; set before Listen.
	IdleTimeout time.Duration

	mu       sync.Mutex
	mgr      *Manager // swappable: a promoted standby installs its restored manager
	handler  func(Request) Response
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer wraps mgr.
func NewServer(mgr *Manager) *Server {
	return &Server{mgr: mgr, conns: make(map[net.Conn]struct{})}
}

// SetManager swaps the served manager — how a standby daemon replaces
// its placeholder manager with the one restored from the replicated
// journal on promotion, without dropping client connections. An
// in-flight request keeps the manager it already resolved.
func (s *Server) SetManager(mgr *Manager) {
	s.mu.Lock()
	s.mgr = mgr
	s.mu.Unlock()
}

// Manager returns the currently served manager.
func (s *Server) Manager() *Manager {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mgr
}

// SetHandler overrides request dispatch entirely: every request goes
// to h instead of the wrapped manager. This is how a sharded daemon
// serves the control plane from its aggregator (internal/shard), which
// routes each op to the owning leaf manager — a single flat Manager
// cannot answer for a tree. Set before Listen.
func (s *Server) SetHandler(h func(Request) Response) {
	s.mu.Lock()
	s.handler = h
	s.mu.Unlock()
}

// handlerFn reads the dispatch override.
func (s *Server) handlerFn() func(Request) Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.handler
}

// Listen binds addr and serves until Close.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("dcm: server closed")
	}
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serve(conn)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

func (s *Server) serve(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	idle := s.IdleTimeout
	if idle <= 0 {
		idle = DefaultIdleTimeout
	}
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		conn.SetReadDeadline(time.Now().Add(idle))
		var req Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := s.Handle(req)
		conn.SetWriteDeadline(time.Now().Add(idle))
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// mutatingOps are the requests a deposed or stale client must not
// land on the wrong manager; they honour Request.Epoch.
var mutatingOps = map[string]bool{
	"add": true, "remove": true, "setcap": true, "settier": true, "budget": true,
}

// Handle dispatches one request; exposed for in-process use and tests.
func (s *Server) Handle(req Request) Response {
	fail := func(err error) Response { return Response{Error: err.Error()} }
	if h := s.handlerFn(); h != nil {
		// The override owns the whole dispatch, including the mutating-op
		// epoch check: the wrapped manager may be nil in handler mode.
		return h(req)
	}
	mgr := s.Manager()
	if mutatingOps[req.Op] && req.Epoch != 0 {
		if cur := mgr.Epoch(); req.Epoch != cur {
			return fail(fmt.Errorf("dcm: stale client epoch %d (serving epoch %d)", req.Epoch, cur))
		}
	}
	switch req.Op {
	case "add":
		if err := mgr.AddNode(req.Name, req.Addr); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	case "remove":
		if err := mgr.RemoveNode(req.Name); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	case "nodes":
		return Response{
			OK: true, Nodes: mgr.Nodes(),
			Role: string(mgr.Role()), Epoch: mgr.Epoch(), Fenced: mgr.Fenced(),
		}
	case "leader":
		return Response{
			OK:   true,
			Role: string(mgr.Role()), Epoch: mgr.Epoch(), Fenced: mgr.Fenced(),
		}
	case "setcap":
		if req.Name == "" {
			return fail(fmt.Errorf("dcm: setcap requires a node name"))
		}
		if err := mgr.SetNodeCap(req.Name, req.Cap); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	case "settier":
		if req.Name == "" {
			return fail(fmt.Errorf("dcm: settier requires a node name"))
		}
		tier, err := ParseTier(req.Tier)
		if err != nil {
			return fail(err)
		}
		if err := mgr.SetNodeTier(req.Name, tier); err != nil {
			return fail(err)
		}
		return Response{OK: true}
	case "budget":
		if len(req.Group) == 0 {
			return fail(fmt.Errorf("dcm: budget requires a non-empty node group"))
		}
		allocs, err := mgr.ApplyBudgetWeighted(req.Budget, req.Group, req.Weights)
		if err != nil {
			return fail(err)
		}
		return Response{OK: true, Allocs: allocs}
	case "poll":
		mgr.Poll()
		return Response{OK: true, Nodes: mgr.Nodes()}
	case "trace":
		return Response{OK: true, Trace: mgr.TraceEvents(req.Since, req.Name, req.Limit)}
	case "history":
		h, err := mgr.History(req.Name)
		if err != nil {
			return fail(err)
		}
		if req.Limit > 0 && len(h) > req.Limit {
			h = h[len(h)-req.Limit:]
		}
		return Response{OK: true, History: h}
	default:
		return fail(fmt.Errorf("dcm: unknown op %q", req.Op))
	}
}

// Close stops the listener and open connections, and waits for
// handlers. It returns even with clients mid-connection: their
// connections are closed out from under them.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
}

// Call dials a control-plane server, performs one request, and closes,
// bounded by DefaultCallTimeout.
func Call(addr string, req Request) (Response, error) {
	return CallTimeout(addr, req, DefaultCallTimeout)
}

// CallTimeout is Call with an explicit bound on the whole round trip
// (zero means unbounded, the pre-fault-model behaviour).
func CallTimeout(addr string, req Request, timeout time.Duration) (Response, error) {
	d := net.Dialer{Timeout: timeout}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return Response{}, err
	}
	defer conn.Close()
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout))
	}
	if err := json.NewEncoder(conn).Encode(req); err != nil {
		return Response{}, err
	}
	var resp Response
	if err := json.NewDecoder(conn).Decode(&resp); err != nil {
		return Response{}, err
	}
	return resp, nil
}
