package dcm

import (
	"fmt"
	"sort"
	"time"

	"nodecap/internal/dcm/store"
	"nodecap/internal/ipmi"
)

// OpenStateDir attaches a durable store rooted at dir and restores the
// registry and desired policies it holds. Restored nodes start
// disconnected — the next Poll (or an explicit SetNodeCap) dials them,
// and the reconciliation sweep re-pushes each desired policy the BMC
// no longer reports (a BMC rebooted while the manager was down, or a
// freshly restarted manager whose nodes kept running).
//
// Call it once, before serving traffic; registry mutations and cap
// changes from then on are journaled synchronously.
func (m *Manager) OpenStateDir(dir string) error {
	st, err := store.Open(dir)
	if err != nil {
		return fmt.Errorf("dcm: %w", err)
	}
	m.mu.Lock()
	if m.store != nil {
		m.mu.Unlock()
		st.Close()
		return fmt.Errorf("dcm: state dir already open")
	}
	m.store = st
	st.SetTelemetry(m.telReg, m.tel.trace)
	for name, rec := range st.State().Nodes {
		if _, dup := m.nodes[name]; dup {
			continue
		}
		n := &managedNode{
			name: name, addr: rec.Addr,
			busy: make(chan struct{}, 1),
			status: NodeStatus{
				Name: name, Addr: rec.Addr,
				MinCapWatts: rec.MinCapWatts, MaxCapWatts: rec.MaxCapWatts,
				LastError: "restored from state dir; not yet polled",
			},
		}
		if rec.HaveCap {
			n.desired = ipmi.PowerLimit{Enabled: rec.CapEnabled, CapWatts: rec.CapWatts}
			n.haveDesired = true
			n.status.CapWatts = rec.CapWatts
			n.status.CapEnabled = rec.CapEnabled
		}
		m.nodes[name] = n
	}
	m.mu.Unlock()
	return nil
}

// RestoredBudget reports the auto-balance configuration the state dir
// held, so a restarted daemon can re-arm StartAutoBalance. ok is false
// when no budget was active.
func (m *Manager) RestoredBudget() (watts float64, group []string, interval time.Duration, ok bool) {
	m.mu.Lock()
	st := m.store
	m.mu.Unlock()
	if st == nil {
		return 0, nil, 0, false
	}
	b := st.State().Budget
	if b == nil {
		return 0, nil, 0, false
	}
	return b.Watts, append([]string(nil), b.Group...), b.Interval, true
}

// StoreState returns a deep copy of the attached store's durable state
// and reports whether a store is open. Recovery drills compare it
// against an independently maintained shadow of the journaled ops to
// prove round-trip integrity after a crash.
func (m *Manager) StoreState() (store.State, bool) {
	m.mu.Lock()
	st := m.store
	m.mu.Unlock()
	if st == nil {
		return store.State{}, false
	}
	return st.State(), true
}

// journalNode persists one node's registration + desired policy (or
// its removal). No-op without a store.
func (m *Manager) journalNode(op string, n *managedNode) error {
	m.mu.Lock()
	st := m.store
	var rec *store.NodeRecord
	if st != nil && op != store.OpRemoveNode {
		rec = &store.NodeRecord{
			Addr:        n.addr,
			MinCapWatts: n.status.MinCapWatts,
			MaxCapWatts: n.status.MaxCapWatts,
			HaveCap:     n.haveDesired,
			CapEnabled:  n.desired.Enabled,
			CapWatts:    n.desired.CapWatts,
		}
	}
	m.mu.Unlock()
	if st == nil {
		return nil
	}
	if err := st.Apply(store.Record{Op: op, Name: n.name, Node: rec}); err != nil {
		return fmt.Errorf("dcm: journaling %s %q: %w", op, n.name, err)
	}
	return nil
}

// journalBudget persists (or, with nil, clears) the auto-balance
// configuration. No-op without a store.
func (m *Manager) journalBudget(b *store.BudgetRecord) error {
	m.mu.Lock()
	st := m.store
	m.mu.Unlock()
	if st == nil {
		return nil
	}
	if b != nil {
		b.Group = append([]string(nil), b.Group...)
		sort.Strings(b.Group)
	}
	if err := st.Apply(store.Record{Op: store.OpBudget, Budget: b}); err != nil {
		return fmt.Errorf("dcm: journaling budget: %w", err)
	}
	return nil
}
