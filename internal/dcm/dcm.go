// Package dcm implements the Intel Data Center Manager role of the
// paper's architecture: a management server that connects to the BMCs
// of a fleet of nodes over IPMI, monitors their power consumption, and
// pushes power-capping policies.
//
// Beyond the single-node policies the study uses, the package also
// implements DCM's data-center feature — a group power budget divided
// among nodes by demand-proportional water-filling — because that is
// the deployment model (Section II-A) the product was actually sold
// for; the fielded-platform use of the paper is the single-node
// special case.
package dcm

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"nodecap/internal/ipmi"
)

// BMC is the per-node management connection the manager drives.
// *ipmi.Client implements it; tests substitute fakes.
type BMC interface {
	GetDeviceID() (ipmi.DeviceInfo, error)
	GetPowerReading() (ipmi.PowerReading, error)
	SetPowerLimit(ipmi.PowerLimit) error
	GetPowerLimit() (ipmi.PowerLimit, error)
	GetPStateInfo() (ipmi.PStateInfo, error)
	GetGatingLevel() (int, error)
	GetCapabilities() (ipmi.Capabilities, error)
	Close() error
}

// Dialer opens a BMC connection; injectable for tests.
type Dialer func(addr string) (BMC, error)

// DefaultDialer dials a real IPMI/TCP endpoint.
func DefaultDialer(addr string) (BMC, error) {
	return ipmi.Dial(addr)
}

// Sample is one monitoring observation.
type Sample struct {
	At           time.Time
	PowerWatts   float64
	AverageWatts float64
	FreqMHz      int
	PState       int
	GatingLevel  int
}

// NodeStatus is the manager's view of one node.
type NodeStatus struct {
	Name        string
	Addr        string
	Reachable   bool
	CapWatts    float64
	CapEnabled  bool
	Last        Sample
	MinCapWatts float64
	MaxCapWatts float64
}

type managedNode struct {
	name, addr string
	bmc        BMC
	status     NodeStatus
	history    []Sample
}

// Manager is the DCM instance.
type Manager struct {
	dial Dialer

	mu    sync.Mutex
	nodes map[string]*managedNode

	// HistoryLimit bounds per-node history length.
	HistoryLimit int

	stopPoll    chan struct{}
	stopBalance chan struct{}
	pollWG      sync.WaitGroup
}

// NewManager builds a manager using dial (nil means DefaultDialer).
func NewManager(dial Dialer) *Manager {
	if dial == nil {
		dial = DefaultDialer
	}
	return &Manager{dial: dial, nodes: make(map[string]*managedNode), HistoryLimit: 4096}
}

// AddNode connects to a node's BMC and registers it under name.
func (m *Manager) AddNode(name, addr string) error {
	m.mu.Lock()
	if _, dup := m.nodes[name]; dup {
		m.mu.Unlock()
		return fmt.Errorf("dcm: node %q already registered", name)
	}
	m.mu.Unlock()

	bmc, err := m.dial(addr)
	if err != nil {
		return fmt.Errorf("dcm: connecting to %s: %w", addr, err)
	}
	caps, err := bmc.GetCapabilities()
	if err != nil {
		bmc.Close()
		return fmt.Errorf("dcm: querying %s capabilities: %w", addr, err)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.nodes[name]; dup {
		bmc.Close()
		return fmt.Errorf("dcm: node %q already registered", name)
	}
	m.nodes[name] = &managedNode{
		name: name, addr: addr, bmc: bmc,
		status: NodeStatus{
			Name: name, Addr: addr, Reachable: true,
			MinCapWatts: caps.MinCapWatts, MaxCapWatts: caps.MaxCapWatts,
		},
	}
	return nil
}

// RemoveNode drops a node, closing its connection.
func (m *Manager) RemoveNode(name string) error {
	m.mu.Lock()
	n, ok := m.nodes[name]
	delete(m.nodes, name)
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("dcm: unknown node %q", name)
	}
	return n.bmc.Close()
}

// Nodes lists statuses sorted by name.
func (m *Manager) Nodes() []NodeStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]NodeStatus, 0, len(m.nodes))
	for _, n := range m.nodes {
		out = append(out, n.status)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// node fetches a registered node.
func (m *Manager) node(name string) (*managedNode, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[name]
	if !ok {
		return nil, fmt.Errorf("dcm: unknown node %q", name)
	}
	return n, nil
}

// SetNodeCap pushes a capping policy to one node. capWatts <= 0
// disables capping.
func (m *Manager) SetNodeCap(name string, capWatts float64) error {
	n, err := m.node(name)
	if err != nil {
		return err
	}
	lim := ipmi.PowerLimit{Enabled: capWatts > 0, CapWatts: capWatts}
	if err := n.bmc.SetPowerLimit(lim); err != nil {
		return fmt.Errorf("dcm: setting cap on %q: %w", name, err)
	}
	m.mu.Lock()
	n.status.CapWatts = capWatts
	n.status.CapEnabled = lim.Enabled
	m.mu.Unlock()
	return nil
}

// Poll performs one monitoring round across all nodes, updating
// statuses and history.
func (m *Manager) Poll() {
	m.mu.Lock()
	nodes := make([]*managedNode, 0, len(m.nodes))
	for _, n := range m.nodes {
		nodes = append(nodes, n)
	}
	m.mu.Unlock()

	for _, n := range nodes {
		s, err := m.sampleNode(n)
		m.mu.Lock()
		if err != nil {
			n.status.Reachable = false
		} else {
			n.status.Reachable = true
			n.status.Last = s
			n.history = append(n.history, s)
			if len(n.history) > m.HistoryLimit {
				n.history = n.history[len(n.history)-m.HistoryLimit:]
			}
		}
		m.mu.Unlock()
	}
}

func (m *Manager) sampleNode(n *managedNode) (Sample, error) {
	pr, err := n.bmc.GetPowerReading()
	if err != nil {
		return Sample{}, err
	}
	ps, err := n.bmc.GetPStateInfo()
	if err != nil {
		return Sample{}, err
	}
	g, err := n.bmc.GetGatingLevel()
	if err != nil {
		return Sample{}, err
	}
	return Sample{
		At:           time.Now(),
		PowerWatts:   pr.CurrentWatts,
		AverageWatts: pr.AverageWatts,
		FreqMHz:      int(ps.FreqMHz),
		PState:       int(ps.Index),
		GatingLevel:  g,
	}, nil
}

// History returns a copy of one node's monitoring history.
func (m *Manager) History(name string) ([]Sample, error) {
	n, err := m.node(name)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Sample, len(n.history))
	copy(out, n.history)
	return out, nil
}

// StartPolling polls every interval until StopPolling.
func (m *Manager) StartPolling(interval time.Duration) {
	m.mu.Lock()
	if m.stopPoll != nil {
		m.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	m.stopPoll = stop
	m.mu.Unlock()

	m.pollWG.Add(1)
	go func() {
		defer m.pollWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				m.Poll()
			}
		}
	}()
}

// StopPolling signals the background poller to halt. Close waits for
// all background goroutines to finish.
func (m *Manager) StopPolling() {
	m.mu.Lock()
	stop := m.stopPoll
	m.stopPoll = nil
	m.mu.Unlock()
	if stop != nil {
		close(stop)
	}
}

// Close stops polling and rebalancing and disconnects every node.
func (m *Manager) Close() {
	m.StopPolling()
	m.StopAutoBalance()
	m.pollWG.Wait()
	m.mu.Lock()
	nodes := m.nodes
	m.nodes = make(map[string]*managedNode)
	m.mu.Unlock()
	for _, n := range nodes {
		n.bmc.Close()
	}
}
