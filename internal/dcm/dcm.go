// Package dcm implements the Intel Data Center Manager role of the
// paper's architecture: a management server that connects to the BMCs
// of a fleet of nodes over IPMI, monitors their power consumption, and
// pushes power-capping policies.
//
// Beyond the single-node policies the study uses, the package also
// implements DCM's data-center feature — a group power budget divided
// among nodes by demand-proportional water-filling — because that is
// the deployment model (Section II-A) the product was actually sold
// for; the fielded-platform use of the paper is the single-node
// special case.
//
// Fault model: BMCs are remote devices on their own NICs and fail
// independently — they hang, reset, partition, and come back. The
// manager therefore bounds every exchange with the client's request
// timeout, polls nodes through a bounded worker pool so one stuck node
// cannot stall the sweep, drops a failed node's connection and redials
// it on a capped exponential backoff with jitter, and serializes all
// per-node I/O through an ownership token so a poll, a cap push, and a
// concurrent RemoveNode can never interleave frames or race a Close.
package dcm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"nodecap/internal/dcm/store"
	"nodecap/internal/ipmi"
	"nodecap/internal/telemetry"
)

// BMC is the per-node management connection the manager drives.
// *ipmi.Client implements it; tests substitute fakes.
type BMC interface {
	GetDeviceID() (ipmi.DeviceInfo, error)
	GetPowerReading() (ipmi.PowerReading, error)
	SetPowerLimit(ipmi.PowerLimit) error
	GetPowerLimit() (ipmi.PowerLimit, error)
	GetPStateInfo() (ipmi.PStateInfo, error)
	GetGatingLevel() (int, error)
	GetCapabilities() (ipmi.Capabilities, error)
	GetHealth() (ipmi.Health, error)
	Close() error
}

// Dialer opens a BMC connection; injectable for tests.
type Dialer func(addr string) (BMC, error)

// DefaultDialer dials a real IPMI/TCP endpoint with the package
// default connect and request timeouts.
func DefaultDialer(addr string) (BMC, error) {
	return ipmi.Dial(addr)
}

// Manager tuning defaults.
const (
	DefaultPollConcurrency = 16
	DefaultRetryBaseDelay  = 500 * time.Millisecond
	DefaultRetryMaxDelay   = 30 * time.Second
	// DefaultStaleAfter is how long an unreachable node's last good
	// sample keeps counting as live demand in budget allocation.
	DefaultStaleAfter = 30 * time.Second
)

// Tier is a node's allocation priority class. High-tier nodes carry
// latency-critical serving work and outweigh low-tier (batch) nodes
// when a group budget is divided; see AllocateBudgetWeighted.
type Tier string

const (
	TierLow  Tier = "low"
	TierHigh Tier = "high"
)

// DefaultHighTierWeight is the demand multiplier a TierHigh node gets
// in budget allocation when no explicit weight is supplied: under a
// constrained budget a serving node's demand counts four times a batch
// node's, mirroring the in-node batch-first escalation order.
const DefaultHighTierWeight = 4.0

// ParseTier validates an operator-supplied tier name.
func ParseTier(s string) (Tier, error) {
	switch Tier(s) {
	case TierLow, TierHigh:
		return Tier(s), nil
	}
	return "", fmt.Errorf("dcm: unknown tier %q (want %q or %q)", s, TierLow, TierHigh)
}

// Sample is one monitoring observation.
type Sample struct {
	At           time.Time
	PowerWatts   float64
	AverageWatts float64
	FreqMHz      int
	PState       int
	GatingLevel  int
}

// NodeStatus is the manager's view of one node. CapWatts/CapEnabled
// are the *desired* policy (operator intent, persisted when a state
// dir is open); ReportedCapWatts/ReportedCapEnabled are what the BMC
// last reported, which reconciliation drives back toward desired.
type NodeStatus struct {
	Name        string
	Addr        string
	Reachable   bool
	CapWatts    float64
	CapEnabled  bool
	Last        Sample
	MinCapWatts float64
	MaxCapWatts float64

	// Tier is the node's allocation priority class (SetNodeTier, or
	// advertised by the platform's capabilities at registration).
	Tier Tier

	// Reconciliation telemetry: the BMC-reported policy as of the last
	// poll, and how often it disagreed with desired state (Drifts) and
	// was successfully re-pushed (Reconciles).
	ReportedCapWatts   float64
	ReportedCapEnabled bool
	Drifts             int
	Reconciles         int

	// BMC-reported defensive-controller health (GetHealth).
	FailSafe      bool
	SensorFaults  int
	InfeasibleCap bool

	// Health telemetry maintained by the fault-tolerant control loop.
	ConsecFailures int       // consecutive failed exchanges; 0 when healthy
	Reconnects     int       // successful redials since registration
	LastError      string    // most recent failure, empty when healthy
	LastOKAt       time.Time // last successful exchange
	NextRetryAt    time.Time // backoff gate for the next redial attempt

	// Gray-failure defense telemetry (breaker.go). Breaker is the
	// node's circuit-breaker state (closed/open/half-open/quarantined);
	// LatencyEWMA and LatencyP99 track sample-exchange latency;
	// BusySkips counts poll rounds skipped because another operation
	// owned the node's I/O token.
	Breaker      string
	BreakerOpens int
	LatencyEWMA  time.Duration
	LatencyP99   time.Duration
	BusySkips    int
}

// managedNode is one fleet entry. Locking discipline: status, history,
// removed, nextRetry and the bmc *pointer* are guarded by Manager.mu;
// *using* the bmc (any I/O, Close, or swapping the pointer) requires
// holding the node's ownership token (busy). RemoveNode marks the node
// removed under mu, then takes the token before closing, so an owner
// that rechecks removed after acquiring can never use a closed
// connection.
type managedNode struct {
	name, addr string
	busy       chan struct{} // capacity 1: per-node I/O ownership token
	bmc        BMC           // nil while disconnected
	removed    bool
	status     NodeStatus
	history    []Sample
	nextRetry  time.Time

	// capMu serializes priority-lane cap pushes (fresh connections that
	// bypass the busy token when a slow poll owns it; see SetNodeCap).
	capMu sync.Mutex

	// consecSkips counts consecutive busy-skipped poll rounds (guarded
	// by Manager.mu); brk is the node's circuit breaker (breaker.go).
	consecSkips int
	brk         breaker

	// desired is the operator-intended policy; haveDesired
	// distinguishes "never set" (nothing to reconcile) from "cap
	// disabled" (uncapped IS the desired state and is re-pushed when a
	// BMC drifts). Guarded by Manager.mu.
	desired     ipmi.PowerLimit
	haveDesired bool
}

// acquire takes the node's ownership token, blocking behind any
// in-flight operation.
func (n *managedNode) acquire() { n.busy <- struct{}{} }

// tryAcquire takes the token only if it is free.
func (n *managedNode) tryAcquire() bool {
	select {
	case n.busy <- struct{}{}:
		return true
	default:
		return false
	}
}

func (n *managedNode) release() { <-n.busy }

// Manager is the DCM instance.
type Manager struct {
	dial Dialer

	// Clock supplies wall time for staleness accounting, backoff gates
	// and sample stamps; nil means time.Now. Injectable so deterministic
	// harnesses (internal/chaos) replay bit-identically — AllocateBudget
	// in particular must never consult the real clock, or a replayed
	// run's stale-node decisions depend on host scheduling.
	Clock func() time.Time

	mu    sync.Mutex
	nodes map[string]*managedNode
	rng   *rand.Rand

	// HistoryLimit bounds per-node history length.
	HistoryLimit int

	// PollConcurrency bounds how many nodes one Poll sweep samples in
	// parallel (default DefaultPollConcurrency).
	PollConcurrency int

	// RetryBaseDelay and RetryMaxDelay shape the capped exponential
	// backoff between redial attempts to a failed node.
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration

	// StaleAfter is how long an unreachable node's frozen last sample
	// still counts as demand in AllocateBudget; beyond it the node is
	// granted only its platform minimum (default DefaultStaleAfter).
	StaleAfter time.Duration

	// Breaker tunes the per-node circuit breakers (breaker.go). The
	// zero value enables consecutive-failure tripping with defaults;
	// set FailureThreshold to -1 to disable breakers entirely.
	Breaker BreakerConfig

	// HedgeDelay, when > 0, races a duplicate cap push on a fresh
	// connection once the primary attempt has been in flight this long.
	// Pushes are idempotent and epoch-fenced, so the duplicate is safe;
	// 0 disables hedging.
	HedgeDelay time.Duration

	// PollBudget, when > 0, is the interval budget one Poll round is
	// expected to fit in. A round that overruns it raises the shed
	// level for subsequent rounds (brownout: open-breaker probes at
	// reduced cadence, history appends skipped); rounds back under
	// budget decay it. Drift reconciliation and cap pushes never shed.
	PollBudget time.Duration

	// BreakerHoldsPushes / BreakerNeverProbes deliberately mis-wire the
	// gray-failure defenses for harness self-tests (chaos
	// -break-breaker): pushes refuse to cross an open breaker, and open
	// breakers never grant the half-open probe. They exist to prove the
	// chaos checkers (cap_push_bounded, no_starvation) catch real
	// regressions; production paths never set them.
	BreakerHoldsPushes bool
	BreakerNeverProbes bool

	// shedLevel is the current brownout level (0 = none, capped at 2),
	// guarded by mu.
	shedLevel int

	// tierDefaults holds operator-preset tiers (PresetNodeTier) applied
	// when the named node registers, overriding the tier the platform
	// advertises. Guarded by mu.
	tierDefaults map[string]Tier

	// store, when non-nil, persists desired state (see OpenStateDir).
	store *store.Store

	// tel holds the metric handles and trace sink wired by
	// SetTelemetry; telReg keeps the registry so a later OpenStateDir
	// can wire the store. Guarded by mu.
	tel    managerTelemetry
	telReg *telemetry.Registry

	// HA state (see ha.go): the manager's role, the fencing epoch
	// stamped onto every cap push, and whether a push has been fenced
	// by a node (proof a newer leader exists). Guarded by mu.
	role   Role
	epoch  uint64
	fenced bool

	stopPoll    chan struct{}
	stopBalance chan struct{}
	pollWG      sync.WaitGroup
}

// NewManager builds a manager using dial (nil means DefaultDialer).
func NewManager(dial Dialer) *Manager {
	if dial == nil {
		dial = DefaultDialer
	}
	return &Manager{
		dial:            dial,
		nodes:           make(map[string]*managedNode),
		role:            RoleSolo,
		rng:             rand.New(rand.NewSource(1)),
		HistoryLimit:    4096,
		PollConcurrency: DefaultPollConcurrency,
		RetryBaseDelay:  DefaultRetryBaseDelay,
		RetryMaxDelay:   DefaultRetryMaxDelay,
		StaleAfter:      DefaultStaleAfter,
	}
}

// wallNow reads the manager's wall clock (Clock, or time.Now).
func (m *Manager) wallNow() time.Time {
	if m.Clock != nil {
		return m.Clock()
	}
	return time.Now()
}

// AddNode connects to a node's BMC and registers it under name.
func (m *Manager) AddNode(name, addr string) error {
	m.mu.Lock()
	if _, dup := m.nodes[name]; dup {
		m.mu.Unlock()
		return fmt.Errorf("dcm: node %q already registered", name)
	}
	m.mu.Unlock()

	bmc, err := m.dial(addr)
	if err != nil {
		return fmt.Errorf("dcm: connecting to %s: %w", addr, err)
	}
	caps, err := bmc.GetCapabilities()
	if err != nil {
		bmc.Close()
		return fmt.Errorf("dcm: querying %s capabilities: %w", addr, err)
	}

	m.mu.Lock()
	if _, dup := m.nodes[name]; dup {
		m.mu.Unlock()
		bmc.Close()
		return fmt.Errorf("dcm: node %q already registered", name)
	}
	tier := TierLow
	if caps.Tier == ipmi.TierHigh {
		tier = TierHigh
	}
	if preset, ok := m.tierDefaults[name]; ok {
		tier = preset
	}
	n := &managedNode{
		name: name, addr: addr, bmc: bmc,
		busy: make(chan struct{}, 1),
		status: NodeStatus{
			Name: name, Addr: addr, Reachable: true,
			MinCapWatts: caps.MinCapWatts, MaxCapWatts: caps.MaxCapWatts,
			Tier:     tier,
			Breaker:  BreakerClosed,
			LastOKAt: m.wallNow(),
		},
	}
	m.nodes[name] = n
	m.mu.Unlock()
	m.updateFleetGauges()
	return m.journalNode(store.OpAddNode, n)
}

// RemoveNode drops a node, closing its connection. It waits for any
// in-flight operation on the node to finish, so the close can never
// race a poll or cap push mid-exchange.
func (m *Manager) RemoveNode(name string) error {
	m.mu.Lock()
	n, ok := m.nodes[name]
	if ok {
		n.removed = true
		delete(m.nodes, name)
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("dcm: unknown node %q", name)
	}
	m.updateFleetGauges()
	jerr := m.journalNode(store.OpRemoveNode, n)
	n.acquire()
	defer n.release()
	m.mu.Lock()
	bmc := n.bmc
	n.bmc = nil
	m.mu.Unlock()
	if bmc != nil {
		if cerr := bmc.Close(); jerr == nil {
			jerr = cerr
		}
	}
	return jerr
}

// Nodes lists statuses sorted by name.
func (m *Manager) Nodes() []NodeStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]NodeStatus, 0, len(m.nodes))
	for _, n := range m.nodes {
		out = append(out, n.status)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DesiredCapSum sums the enabled desired caps across the fleet — the
// quantity the budget-conservation invariant audits. Unlike Nodes()
// it allocates nothing, so a per-tick auditor can call it at 10k-node
// scale without turning the audit loop into a garbage factory.
func (m *Manager) DesiredCapSum() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum float64
	for _, n := range m.nodes {
		if n.status.CapEnabled {
			sum += n.status.CapWatts
		}
	}
	return sum
}

// node fetches a registered node.
func (m *Manager) node(name string) (*managedNode, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[name]
	if !ok {
		return nil, fmt.Errorf("dcm: unknown node %q", name)
	}
	return n, nil
}

// backoff returns the redial delay after the given count of
// consecutive failures: capped exponential with jitter in
// [delay/2, delay], so it never exceeds RetryMaxDelay. Callers hold
// m.mu (the rng is guarded by it).
func (m *Manager) backoff(failures int) time.Duration {
	base, max := m.RetryBaseDelay, m.RetryMaxDelay
	if base <= 0 {
		base = DefaultRetryBaseDelay
	}
	if max <= 0 {
		max = DefaultRetryMaxDelay
	}
	d := base
	for i := 1; i < failures && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if half := d / 2; half > 0 {
		d = half + time.Duration(m.rng.Int63n(int64(half)+1))
	}
	return d
}

// recordFailure marks one failed exchange, arms the backoff gate and
// feeds the circuit breaker.
func (m *Manager) recordFailure(n *managedNode, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n.status.Reachable = false
	n.status.ConsecFailures++
	n.status.LastError = err.Error()
	now := m.wallNow()
	n.nextRetry = now.Add(m.backoff(n.status.ConsecFailures))
	n.status.NextRetryAt = n.nextRetry
	m.tel.backoffs.Inc()
	m.tel.trace.Append(telemetry.Event{
		Node: n.name, Kind: telemetry.EvBackoff,
		N: int64(n.status.ConsecFailures), Err: n.status.LastError,
	})
	m.brkOnFailure(n, now, err)
}

// recordSuccess clears the failure state after a good exchange.
// Callers hold m.mu.
func (m *Manager) recordSuccess(n *managedNode) {
	n.status.Reachable = true
	n.status.ConsecFailures = 0
	n.status.LastError = ""
	n.status.LastOKAt = m.wallNow()
	n.status.NextRetryAt = time.Time{}
	n.nextRetry = time.Time{}
}

// connect (re)establishes the node's BMC connection. The caller must
// hold the node's ownership token. Returns the live connection or the
// dial error (already recorded).
func (m *Manager) connect(n *managedNode) (BMC, error) {
	m.mu.Lock()
	if n.removed {
		m.mu.Unlock()
		return nil, fmt.Errorf("dcm: unknown node %q", n.name)
	}
	if n.bmc != nil {
		bmc := n.bmc
		m.mu.Unlock()
		return bmc, nil
	}
	m.mu.Unlock()

	bmc, err := m.dial(n.addr)
	if err != nil {
		m.recordFailure(n, err)
		return nil, fmt.Errorf("dcm: reconnecting to %s: %w", n.addr, err)
	}
	m.mu.Lock()
	if n.removed {
		m.mu.Unlock()
		bmc.Close()
		return nil, fmt.Errorf("dcm: unknown node %q", n.name)
	}
	n.bmc = bmc
	n.status.Reconnects++
	m.tel.redials.Inc()
	m.tel.trace.Append(telemetry.Event{
		Node: n.name, Kind: telemetry.EvRedial, N: int64(n.status.Reconnects),
	})
	m.mu.Unlock()
	return bmc, nil
}

// dropConn closes and forgets the node's connection after a failed
// exchange, forcing a redial on the next attempt. The caller must hold
// the ownership token.
func (m *Manager) dropConn(n *managedNode, bmc BMC) {
	bmc.Close()
	m.mu.Lock()
	if n.bmc == bmc {
		n.bmc = nil
	}
	m.mu.Unlock()
}

// SetNodeCap pushes a capping policy to one node. capWatts <= 0
// disables capping. An explicit operator action redials a disconnected
// node immediately, ignoring the poll loop's backoff gate.
//
// Desired state is recorded (and journaled, when a state dir is open)
// *before* the push: if the push fails, the intent survives and the
// reconciliation loop re-pushes it once the node is reachable again.
//
// The push is stamped with the manager's fencing epoch (ha.go); a
// node that has seen a newer leader rejects it with
// ipmi.ErrStaleEpoch, which marks the manager Fenced without dropping
// the connection — the exchange completed, only the authority was
// refused.
func (m *Manager) SetNodeCap(name string, capWatts float64) error {
	n, err := m.node(name)
	if err != nil {
		return err
	}
	lim := ipmi.PowerLimit{Enabled: capWatts > 0, CapWatts: capWatts}
	m.mu.Lock()
	if m.role == RoleStandby {
		m.mu.Unlock()
		return ErrNotLeader
	}
	lim.Epoch = m.epoch
	n.desired = lim
	n.haveDesired = true
	n.status.CapWatts = capWatts
	n.status.CapEnabled = lim.Enabled
	m.mu.Unlock()
	if err := m.journalNode(store.OpSetCap, n); err != nil {
		return err
	}
	if m.BreakerHoldsPushes {
		// Harness self-test misconfiguration: a defense layer that lets
		// breakers gate safety-critical pushes. The chaos cap_push_bounded
		// checker must catch the caps this withholds.
		m.mu.Lock()
		s := n.brk.stateName()
		m.mu.Unlock()
		if s == BreakerOpen || s == BreakerQuarantined {
			err := fmt.Errorf("dcm: breaker open for %q; push withheld (self-test)", name)
			m.capPushFailed(name, capWatts, err)
			return err
		}
	}
	if n.tryAcquire() {
		return m.pushShared(n, lim)
	}
	// Priority lane: another operation owns the busy token — typically
	// a poll mid-exchange with a slow BMC. A safety-critical cap push
	// must not queue behind best-effort telemetry, so it rides a fresh
	// connection instead. Safe beside the in-flight operation: pushes
	// are idempotent and epoch-fenced, and the fresh connection shares
	// no framing state with the token holder's.
	m.mu.Lock()
	m.tel.lanePushes.Inc()
	m.mu.Unlock()
	return m.pushFresh(n, lim)
}

// pushShared delivers a cap push over the node's registered connection.
// The caller must hold the busy token; pushShared releases it — from a
// goroutine when a hedged primary attempt is still in flight at return.
func (m *Manager) pushShared(n *managedNode, lim ipmi.PowerLimit) error {
	bmc, err := m.connect(n)
	if err != nil {
		n.release()
		m.capPushFailed(n.name, lim.CapWatts, err)
		return err
	}
	if m.HedgeDelay <= 0 {
		defer n.release()
		return m.finishPush(n, bmc, lim, true)
	}
	primary := make(chan error, 1)
	go func() {
		primary <- m.finishPush(n, bmc, lim, true)
		n.release()
	}()
	select {
	case err := <-primary:
		return err
	case <-time.After(m.HedgeDelay):
	}
	// The primary exchange is slow; race a duplicate on a fresh
	// connection. First success wins; if both fail, the hedge's error
	// is returned (the primary's outcome was recorded either way when
	// its exchange finally resolved).
	m.mu.Lock()
	m.tel.hedges.Inc()
	m.tel.trace.Append(telemetry.Event{Node: n.name, Kind: telemetry.EvHedge, Watts: lim.CapWatts})
	m.mu.Unlock()
	hedge := make(chan error, 1)
	go func() { hedge <- m.pushFresh(n, lim) }()
	select {
	case err := <-primary:
		if err == nil {
			return nil
		}
		return <-hedge
	case err := <-hedge:
		if err == nil {
			return nil
		}
		return <-primary
	}
}

// pushFresh is the priority lane: the push rides a dedicated fresh
// connection, serialized per node by capMu (bounding concurrent dials)
// but never waiting on the busy token.
func (m *Manager) pushFresh(n *managedNode, lim ipmi.PowerLimit) error {
	n.capMu.Lock()
	defer n.capMu.Unlock()
	m.mu.Lock()
	removed := n.removed
	m.mu.Unlock()
	if removed {
		return fmt.Errorf("dcm: unknown node %q", n.name)
	}
	bmc, err := m.dial(n.addr)
	if err != nil {
		m.recordFailure(n, err)
		m.capPushFailed(n.name, lim.CapWatts, err)
		return fmt.Errorf("dcm: reconnecting to %s: %w", n.addr, err)
	}
	defer bmc.Close()
	return m.finishPush(n, bmc, lim, false)
}

// finishPush executes one SetPowerLimit exchange and records its
// outcome. shared marks bmc as the node's registered connection
// (dropped on failure so the next attempt redials); a priority-lane
// bmc is owned and closed by the caller.
func (m *Manager) finishPush(n *managedNode, bmc BMC, lim ipmi.PowerLimit, shared bool) error {
	if err := bmc.SetPowerLimit(lim); err != nil {
		if errors.Is(err, ipmi.ErrStaleEpoch) {
			m.noteFenced(n, lim.Epoch, err)
			return fmt.Errorf("dcm: setting cap on %q: %w", n.name, err)
		}
		if shared {
			m.dropConn(n, bmc)
		}
		m.recordFailure(n, err)
		m.capPushFailed(n.name, lim.CapWatts, err)
		return fmt.Errorf("dcm: setting cap on %q: %w", n.name, err)
	}
	m.mu.Lock()
	if !n.removed {
		n.status.ReportedCapWatts = lim.CapWatts
		n.status.ReportedCapEnabled = lim.Enabled
		m.recordSuccess(n)
		if n.brk.stateName() == BreakerHalfOpen {
			m.brkClose(n)
		}
	}
	m.tel.capPushes.Inc()
	m.tel.trace.Append(telemetry.Event{
		Node: n.name, Kind: telemetry.EvCapPush, Watts: lim.CapWatts,
	})
	m.mu.Unlock()
	return nil
}

// SetNodeTier reclassifies a node's allocation priority. The tier only
// shapes future budget divisions (it is not pushed to the node); the
// change is traced so a fleet timeline shows why shares shifted.
func (m *Manager) SetNodeTier(name string, tier Tier) error {
	if tier != TierLow && tier != TierHigh {
		return fmt.Errorf("dcm: unknown tier %q", tier)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.nodes[name]
	if !ok {
		return fmt.Errorf("dcm: unknown node %q", name)
	}
	if n.status.Tier == tier {
		return nil
	}
	n.status.Tier = tier
	m.tel.trace.Append(telemetry.Event{
		Node: name, Kind: telemetry.EvTierSet,
		Err: string(tier), Watts: tierWeight(tier),
	})
	return nil
}

// PresetNodeTier records a tier for name, applied when the node
// registers (overriding the platform-advertised tier) and immediately
// if it is already registered — how dcmd's -tiers flag classifies a
// fleet before the nodes come up.
func (m *Manager) PresetNodeTier(name string, tier Tier) error {
	if tier != TierLow && tier != TierHigh {
		return fmt.Errorf("dcm: unknown tier %q", tier)
	}
	m.mu.Lock()
	if m.tierDefaults == nil {
		m.tierDefaults = make(map[string]Tier)
	}
	m.tierDefaults[name] = tier
	_, registered := m.nodes[name]
	m.mu.Unlock()
	if registered {
		return m.SetNodeTier(name, tier)
	}
	return nil
}

// tierWeight maps a tier to its default allocation weight.
func tierWeight(t Tier) float64 {
	if t == TierHigh {
		return DefaultHighTierWeight
	}
	return 1
}

// capPushFailed records cap-push failure telemetry. Callers must NOT
// hold m.mu.
func (m *Manager) capPushFailed(name string, capWatts float64, err error) {
	m.mu.Lock()
	m.tel.capPushFailures.Inc()
	m.tel.trace.Append(telemetry.Event{
		Node: name, Kind: telemetry.EvCapPushFail, Watts: capWatts, Err: err.Error(),
	})
	m.mu.Unlock()
}

// Poll performs one monitoring round across all nodes, updating
// statuses and history. Nodes are sampled through a bounded worker
// pool, so a slow or hung BMC delays only its own slot; a node with an
// operation already in flight is skipped this round rather than
// queued behind it.
func (m *Manager) Poll() {
	start := m.wallNow()
	m.mu.Lock()
	nodes := make([]*managedNode, 0, len(m.nodes))
	for _, n := range m.nodes {
		nodes = append(nodes, n)
	}
	workers := m.PollConcurrency
	budget := m.PollBudget
	shed := m.shedLevel
	tel := m.tel
	m.mu.Unlock()
	if workers <= 0 {
		workers = DefaultPollConcurrency
	}
	// Sweep in name order so the decision-trace events a sequential
	// sweep (PollConcurrency=1, as the chaos harness runs) appends are
	// deterministic run-to-run; with a concurrent pool the order is
	// merely a stable starting schedule.
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].name < nodes[j].name })

	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, n := range nodes {
		sem <- struct{}{}
		wg.Add(1)
		go func(n *managedNode) {
			defer wg.Done()
			defer func() { <-sem }()
			m.pollNode(n, shed)
		}(n)
	}
	wg.Wait()
	elapsed := m.wallNow().Sub(start)
	tel.polls.Inc()
	tel.pollSeconds.Observe(elapsed.Seconds())
	if budget > 0 {
		// Brownout control: a round that overran its interval budget
		// raises the shed level so the *next* round drops lowest-value
		// work first; rounds back under budget decay it one step at a
		// time. Drift reconciliation and cap pushes are never shed.
		m.mu.Lock()
		if elapsed > budget {
			if m.shedLevel < maxShedLevel {
				m.shedLevel++
				m.tel.sheds.Inc()
				m.tel.trace.Append(telemetry.Event{
					Kind: telemetry.EvShed, N: int64(m.shedLevel), Watts: elapsed.Seconds(),
				})
			}
		} else if m.shedLevel > 0 {
			m.shedLevel--
		}
		m.mu.Unlock()
	}
	m.updateFleetGauges()
}

// pollNode samples one node, redialing through the backoff gate when
// disconnected. shed is the brownout level the round runs under.
func (m *Manager) pollNode(n *managedNode, shed int) {
	if !n.tryAcquire() {
		// Another operation owns the node; skip this round. A skip is
		// normal once, but a streak means something (a hung exchange, a
		// push storm) is starving monitoring of this node — count it and
		// say so in the trace rather than staying silent.
		m.mu.Lock()
		n.status.BusySkips++
		n.consecSkips++
		m.tel.busySkips.Inc()
		if n.consecSkips == DefaultStarveSkips {
			m.tel.trace.Append(telemetry.Event{
				Node: n.name, Kind: telemetry.EvBusyStarve, N: int64(n.consecSkips),
			})
		}
		m.mu.Unlock()
		return
	}
	defer n.release()

	m.mu.Lock()
	n.consecSkips = 0
	if n.removed {
		m.mu.Unlock()
		return
	}
	now := m.wallNow()
	gated := n.bmc == nil && now.Before(n.nextRetry)
	allowed := m.brkAllow(n, now, shed)
	m.mu.Unlock()
	if gated || !allowed {
		return
	}

	bmc, err := m.connect(n)
	if err != nil {
		return // failure already recorded
	}
	t0 := m.wallNow()
	s, lim, h, err := sampleBMC(bmc)
	if err != nil {
		m.dropConn(n, bmc)
		m.recordFailure(n, err)
		return
	}
	m.noteExchange(n, m.wallNow().Sub(t0))
	s.At = m.wallNow()

	// Reconcile: the BMC's reported policy must match desired state.
	// A reboot (policy lost) or a write the node missed while the
	// manager was down shows up here; the policy is idempotently
	// re-pushed under the ownership token this goroutine already holds.
	m.mu.Lock()
	desired, reconcile := n.desired, n.haveDesired
	desired.Epoch = m.epoch // fencing token is stamped at push time
	standby := m.role == RoleStandby
	m.mu.Unlock()
	reconcile = reconcile && !standby && policyDrifted(desired, lim)
	if reconcile {
		m.mu.Lock()
		n.status.Drifts++
		m.tel.drifts.Inc()
		m.tel.trace.Append(telemetry.Event{
			Node: n.name, Kind: telemetry.EvDrift, Watts: lim.CapWatts,
		})
		m.mu.Unlock()
		if err := bmc.SetPowerLimit(desired); err != nil {
			if errors.Is(err, ipmi.ErrStaleEpoch) {
				m.noteFenced(n, desired.Epoch, err)
				return
			}
			m.dropConn(n, bmc)
			m.recordFailure(n, err)
			return
		}
		lim = desired
	}

	m.mu.Lock()
	if !n.removed {
		m.recordSuccess(n)
		if reconcile {
			n.status.Reconciles++
			m.tel.reconciles.Inc()
			m.tel.trace.Append(telemetry.Event{
				Node: n.name, Kind: telemetry.EvReconcile, Watts: desired.CapWatts,
			})
		}
		n.status.ReportedCapWatts = lim.CapWatts
		n.status.ReportedCapEnabled = lim.Enabled
		n.status.FailSafe = h.FailSafe
		n.status.SensorFaults = int(h.SensorFaults)
		n.status.InfeasibleCap = h.InfeasibleCap
		n.status.Last = s
		if shed < 1 {
			// History enrichment is the first work a brownout sheds;
			// the live sample above is always kept.
			n.history = append(n.history, s)
			if len(n.history) > m.HistoryLimit {
				n.history = n.history[len(n.history)-m.HistoryLimit:]
			}
		}
	}
	m.mu.Unlock()
}

// policyDrifted reports whether the BMC's reported policy disagrees
// with desired state. Watts compare at the wire's centiwatt
// resolution, so a round-tripped cap is never flagged.
func policyDrifted(desired, reported ipmi.PowerLimit) bool {
	if desired.Enabled != reported.Enabled {
		return true
	}
	if !desired.Enabled {
		return false
	}
	return math.Abs(desired.CapWatts-reported.CapWatts) > 0.011
}

// sampleBMC reads one monitoring observation plus the reported policy
// and controller health. The sample is returned unstamped; the caller
// sets At from the manager's clock.
func sampleBMC(bmc BMC) (Sample, ipmi.PowerLimit, ipmi.Health, error) {
	pr, err := bmc.GetPowerReading()
	if err != nil {
		return Sample{}, ipmi.PowerLimit{}, ipmi.Health{}, err
	}
	ps, err := bmc.GetPStateInfo()
	if err != nil {
		return Sample{}, ipmi.PowerLimit{}, ipmi.Health{}, err
	}
	g, err := bmc.GetGatingLevel()
	if err != nil {
		return Sample{}, ipmi.PowerLimit{}, ipmi.Health{}, err
	}
	lim, err := bmc.GetPowerLimit()
	if err != nil {
		return Sample{}, ipmi.PowerLimit{}, ipmi.Health{}, err
	}
	h, err := bmc.GetHealth()
	if err != nil {
		return Sample{}, ipmi.PowerLimit{}, ipmi.Health{}, err
	}
	return Sample{
		PowerWatts:   pr.CurrentWatts,
		AverageWatts: pr.AverageWatts,
		FreqMHz:      int(ps.FreqMHz),
		PState:       int(ps.Index),
		GatingLevel:  g,
	}, lim, h, nil
}

// History returns a copy of one node's monitoring history.
func (m *Manager) History(name string) ([]Sample, error) {
	n, err := m.node(name)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Sample, len(n.history))
	copy(out, n.history)
	return out, nil
}

// StartPolling polls every interval until StopPolling.
func (m *Manager) StartPolling(interval time.Duration) {
	m.mu.Lock()
	if m.stopPoll != nil {
		m.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	m.stopPoll = stop
	m.mu.Unlock()

	m.pollWG.Add(1)
	go func() {
		defer m.pollWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				m.Poll()
			}
		}
	}()
}

// StopPolling signals the background poller to halt. Close waits for
// all background goroutines to finish.
func (m *Manager) StopPolling() {
	m.mu.Lock()
	stop := m.stopPoll
	m.stopPoll = nil
	m.mu.Unlock()
	if stop != nil {
		close(stop)
	}
}

// Close stops polling and rebalancing and disconnects every node,
// waiting for in-flight per-node operations to drain first. Idempotent:
// a second Close is a no-op.
func (m *Manager) Close() {
	m.shutdown(false)
}

// Crash is Close without the store's graceful-shutdown compaction: the
// state directory is left exactly as a power loss mid-run would leave
// it, so the next OpenStateDir must recover through journal replay.
// For crash-recovery drills (internal/chaos); production paths use
// Close.
func (m *Manager) Crash() {
	m.shutdown(true)
}

func (m *Manager) shutdown(crash bool) {
	m.StopPolling()
	m.stopBalanceLoop() // keep the journaled budget for the restart
	m.pollWG.Wait()
	m.mu.Lock()
	nodes := m.nodes
	m.nodes = make(map[string]*managedNode)
	for _, n := range nodes {
		n.removed = true
	}
	m.mu.Unlock()
	for _, n := range nodes {
		n.acquire()
		m.mu.Lock()
		bmc := n.bmc
		n.bmc = nil
		m.mu.Unlock()
		if bmc != nil {
			bmc.Close()
		}
		n.release()
	}
	m.mu.Lock()
	st := m.store
	m.store = nil
	m.mu.Unlock()
	if st != nil {
		if crash {
			st.Crash()
		} else {
			st.Close()
		}
	}
}
