package dcm

import (
	"sync/atomic"
	"testing"
	"time"

	"nodecap/internal/ipmi"
)

// stallBMC parks GetPowerReading on a channel once armed, simulating a
// BMC that is alive but takes arbitrarily long mid-exchange. Its
// SetPowerLimit stays fast, like real BMCs whose policy write path is
// cheap while the sensor scan crawls.
type stallBMC struct {
	flakyBMC
	armed   atomic.Bool
	entered chan struct{} // signaled when a reading stalls
	release chan struct{} // closed to let the reading finish
}

func (s *stallBMC) GetPowerReading() (ipmi.PowerReading, error) {
	if s.armed.Load() {
		select {
		case s.entered <- struct{}{}:
		default:
		}
		<-s.release
	}
	return ipmi.PowerReading{CurrentWatts: 150, AverageWatts: 150}, nil
}

// TestCapPushPreemptsStalledPoll is the priority-lane regression test
// (ISSUE 9 acceptance): a cap push must complete within its bound while
// a poll of the same node is stalled on a slow BMC. Before the lane,
// SetNodeCap blocked on the per-node busy token the poll held, so the
// push waited out the entire stall.
func TestCapPushPreemptsStalledPoll(t *testing.T) {
	stub := &stallBMC{
		entered: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	m := NewManager(func(addr string) (BMC, error) { return stub, nil })
	defer m.Close()
	if err := m.AddNode("n", "x"); err != nil {
		t.Fatal(err)
	}
	stub.armed.Store(true)

	pollDone := make(chan struct{})
	go func() { m.Poll(); close(pollDone) }()
	<-stub.entered // the poll owns the busy token, stalled mid-exchange

	done := make(chan error, 1)
	go func() { done <- m.SetNodeCap("n", 140) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SetNodeCap during the stall: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cap push queued behind a stalled poll — priority lane missing")
	}
	st := m.Nodes()[0]
	if st.CapWatts != 140 || !st.CapEnabled || st.ReportedCapWatts != 140 {
		t.Errorf("cap not delivered during the stall: %+v", st)
	}

	close(stub.release)
	<-pollDone
}

// hedgeBMC blocks SetPowerLimit until released — the primary push
// connection gone slow mid-write.
type hedgeBMC struct {
	flakyBMC
	stall chan struct{}
}

func (h *hedgeBMC) SetPowerLimit(ipmi.PowerLimit) error {
	<-h.stall
	return nil
}

// TestHedgedPushCompletes: with HedgeDelay set, a push whose primary
// connection stalls is raced on a fresh connection and still lands;
// the duplicate delivery is safe because pushes are idempotent and
// epoch-fenced.
func TestHedgedPushCompletes(t *testing.T) {
	release := make(chan struct{})
	var dials atomic.Int32
	m := NewManager(func(addr string) (BMC, error) {
		if dials.Add(1) == 1 {
			return &hedgeBMC{stall: release}, nil
		}
		return &flakyBMC{}, nil
	})
	defer m.Close()
	m.HedgeDelay = 10 * time.Millisecond
	if err := m.AddNode("n", "x"); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- m.SetNodeCap("n", 150) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("hedged SetNodeCap: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("hedged push never completed while its primary connection stalled")
	}
	if st := m.Nodes()[0]; st.ReportedCapWatts != 150 {
		t.Errorf("hedge landed but status not updated: %+v", st)
	}
	if dials.Load() < 2 {
		t.Errorf("hedge did not dial a fresh connection (%d dials)", dials.Load())
	}
	close(release) // let the parked primary goroutine finish
}
