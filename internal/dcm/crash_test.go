package dcm

import (
	"math"
	"testing"

	"nodecap/internal/dcm/store"
)

// TestManagerCloseIdempotent: chaos crash-restart drills (and sloppy
// defer stacks) call Close repeatedly; every call after the first
// must be a no-op.
func TestManagerCloseIdempotent(t *testing.T) {
	a := newFakeBMC(150)
	m := fleet(map[string]*fakeBMC{"a": a})
	if err := m.OpenStateDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if err := m.AddNode("a", "a"); err != nil {
		t.Fatal(err)
	}
	m.Close()
	m.Close() // must not panic or deadlock
	if !a.closed {
		t.Error("Close left the connection open")
	}
}

// TestManagerCrashSkipsCompaction: Crash must leave the journal
// intact (no graceful-shutdown compaction), so a reopened store
// recovers through replay — the path the chaos harness tears.
func TestManagerCrashSkipsCompaction(t *testing.T) {
	dir := t.TempDir()
	a := newFakeBMC(150)
	m := fleet(map[string]*fakeBMC{"a": a})
	if err := m.OpenStateDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := m.AddNode("a", "a"); err != nil {
		t.Fatal(err)
	}
	if err := m.SetNodeCap("a", 140); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	m.Crash() // idempotent too

	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Replayed() == 0 {
		t.Error("Crash compacted the journal; expected replayable records")
	}
	rec, ok := st.State().Nodes["a"]
	if !ok || !rec.HaveCap || rec.CapWatts != 140 {
		t.Errorf("recovered state = %+v, want cap 140", rec)
	}
}

// TestApplyBudgetPushesDecreasesFirst: re-dividing a budget must
// shrink shares before growing them, so no push prefix (what a crash
// mid-sweep would journal) ever sums over budget.
func TestApplyBudgetPushesDecreasesFirst(t *testing.T) {
	// a idles (121 W), b is busy (170 W): the first division gives b
	// the lion's share. Then demand inverts.
	a, b := newFakeBMC(121), newFakeBMC(170)
	m := fleet(map[string]*fakeBMC{"a": a, "b": b})
	for _, n := range []string{"a", "b"} {
		if err := m.AddNode(n, n); err != nil {
			t.Fatal(err)
		}
	}
	m.Poll()
	if _, err := m.ApplyBudget(300, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	first := map[string]float64{}
	for _, st := range m.Nodes() {
		first[st.Name] = st.CapWatts
	}
	if first["b"] <= first["a"] {
		t.Fatalf("setup broken: b should start with the larger share, got %+v", first)
	}

	// Demand inverts; the next sweep must push b's decrease before
	// a's increase.
	a.mu.Lock()
	a.power = 170
	a.mu.Unlock()
	b.mu.Lock()
	b.power = 121
	b.mu.Unlock()
	m.Poll()
	allocs, err := m.ApplyBudget(300, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if len(allocs) != 2 {
		t.Fatalf("allocs = %+v", allocs)
	}
	var iInc, iDec = -1, -1
	for i, al := range allocs {
		switch {
		case al.CapWatts > first[al.Name]:
			iInc = i
		case al.CapWatts < first[al.Name]:
			iDec = i
		}
	}
	if iInc < 0 || iDec < 0 {
		t.Fatalf("sweep did not both raise and lower a cap: %+v (was %+v)", allocs, first)
	}
	if iDec > iInc {
		t.Errorf("decrease pushed after increase: %+v", allocs)
	}
	// Every push prefix stays within budget: the crash-mid-sweep
	// safety property the order exists for.
	current := map[string]float64{}
	for n, w := range first {
		current[n] = w
	}
	for _, al := range allocs {
		current[al.Name] = al.CapWatts
		var sum float64
		for _, w := range current {
			sum += w
		}
		if sum > 300+1e-6 {
			t.Errorf("after pushing %q, caps sum %.3f W over the 300 W budget", al.Name, sum)
		}
	}
	if math.Abs(current["a"]+current["b"]-300) > 1 {
		t.Errorf("final division wastes budget: %+v", current)
	}
}
