package dcm

import (
	"errors"
	"strings"
	"testing"
	"time"

	"nodecap/internal/dcm/store"
	"nodecap/internal/ipmi"
	"nodecap/internal/telemetry"
)

func TestStandbyRefusesMutations(t *testing.T) {
	b := newFakeBMC(150)
	m := fleet(map[string]*fakeBMC{"a": b})
	if err := m.AddNode("a", "a"); err != nil {
		t.Fatal(err)
	}
	m.SetFencing(RoleStandby, 0)

	if err := m.SetNodeCap("a", 140); !errors.Is(err, ErrNotLeader) {
		t.Errorf("standby SetNodeCap err = %v, want ErrNotLeader", err)
	}
	if _, err := m.ApplyBudget(300, []string{"a"}); !errors.Is(err, ErrNotLeader) {
		t.Errorf("standby ApplyBudget err = %v, want ErrNotLeader", err)
	}
	if got := readLimit(b); got.Enabled {
		t.Errorf("standby actuated the plant: %+v", got)
	}
	// A standby poll observes but never reconciles.
	b.mu.Lock()
	b.limit = ipmi.PowerLimit{Enabled: true, CapWatts: 99}
	b.mu.Unlock()
	m.Poll()
	if got := readLimit(b); got.CapWatts != 99 {
		t.Errorf("standby poll re-pushed a policy: %+v", got)
	}

	// Promotion lifts the gate.
	m.SetFencing(RolePrimary, 2)
	if err := m.SetNodeCap("a", 140); err != nil {
		t.Fatal(err)
	}
}

func TestPushesCarryFencingEpoch(t *testing.T) {
	b := newFakeBMC(150)
	m := fleet(map[string]*fakeBMC{"a": b})
	m.AddNode("a", "a")

	// Solo (epoch 0): legacy unfenced pushes.
	if err := m.SetNodeCap("a", 150); err != nil {
		t.Fatal(err)
	}
	if got := readLimit(b); got.Epoch != 0 {
		t.Errorf("solo push epoch = %d, want 0", got.Epoch)
	}

	m.SetFencing(RolePrimary, 7)
	if err := m.SetNodeCap("a", 140); err != nil {
		t.Fatal(err)
	}
	if got := readLimit(b); got.Epoch != 7 || got.CapWatts != 140 {
		t.Errorf("fenced push = %+v, want epoch 7 / 140 W", got)
	}

	// The reconcile re-push is stamped with the *current* epoch, not
	// the one desired state was recorded under.
	m.SetFencing(RolePrimary, 8)
	b.mu.Lock()
	b.limit = ipmi.PowerLimit{Enabled: true, CapWatts: 60} // rogue drift
	b.mu.Unlock()
	m.Poll()
	if got := readLimit(b); got.Epoch != 8 || got.CapWatts != 140 {
		t.Errorf("reconciled push = %+v, want epoch 8 / 140 W", got)
	}
}

func TestStaleEpochPushMarksFenced(t *testing.T) {
	b := newFakeBMC(150)
	m := fleet(map[string]*fakeBMC{"a": b})
	m.AddNode("a", "a")
	m.SetFencing(RolePrimary, 3)
	if err := m.SetNodeCap("a", 140); err != nil {
		t.Fatal(err)
	}

	// The node has seen a newer leader: every push now bounces.
	b.mu.Lock()
	b.setErr = ipmi.ErrStaleEpoch
	b.mu.Unlock()
	err := m.SetNodeCap("a", 130)
	if !errors.Is(err, ipmi.ErrStaleEpoch) {
		t.Fatalf("push err = %v, want ErrStaleEpoch", err)
	}
	if !m.Fenced() {
		t.Error("manager not marked fenced after a stale-epoch rejection")
	}
	// The rejection is an authority verdict, not a transport fault: the
	// connection survives and no backoff gate is armed.
	if b.closed {
		t.Error("connection dropped on a stale-epoch rejection")
	}
	if s := status(t, m, "a"); !s.Reachable || s.ConsecFailures != 0 {
		t.Errorf("fenced push treated as transport failure: %+v", s)
	}
	// SetFencing (a later legitimate promotion) clears the verdict.
	m.SetFencing(RolePrimary, 9)
	if m.Fenced() {
		t.Error("Fenced survived SetFencing")
	}
}

// haPair builds two managers over the same fakes and state-dir-less
// lease, with a shared deterministic clock.
func haPair(t *testing.T, bmcs map[string]*fakeBMC) (*Manager, *Manager, *HANode, *HANode, *fakeClockHA) {
	t.Helper()
	clk := &fakeClockHA{now: time.Unix(5000, 0)}
	lease := store.NewLeaseFile(store.LeasePath(t.TempDir()))
	lease.Clock = clk.read
	m1, m2 := fleet(bmcs), fleet(bmcs)
	h1 := &HANode{ID: "m1", Lease: lease, TTL: 10 * time.Second, Mgr: m1}
	h2 := &HANode{ID: "m2", Lease: lease, TTL: 10 * time.Second, Mgr: m2}
	return m1, m2, h1, h2, clk
}

type fakeClockHA struct{ now time.Time }

func (c *fakeClockHA) read() time.Time         { return c.now }
func (c *fakeClockHA) advance(d time.Duration) { c.now = c.now.Add(d) }

func TestHAFailover(t *testing.T) {
	b := newFakeBMC(150)
	bmcs := map[string]*fakeBMC{"a": b}
	m1, m2, h1, h2, clk := haPair(t, bmcs)

	var promotedAt uint64
	h2.OnPromote = func(epoch uint64) { promotedAt = epoch }

	if role, err := h1.Start(); err != nil || role != RolePrimary {
		t.Fatalf("m1 Start = %v, %v", role, err)
	}
	if role, err := h2.Start(); err != nil || role != RoleStandby {
		t.Fatalf("m2 Start = %v, %v", role, err)
	}
	if m1.Epoch() != 1 || m1.Role() != RolePrimary {
		t.Fatalf("primary fencing = %v/%d", m1.Role(), m1.Epoch())
	}

	// Primary actuates; the standby fleet has the same node registered
	// (mirroring the journal) but never pushes.
	if err := m1.AddNode("a", "a"); err != nil {
		t.Fatal(err)
	}
	if err := m2.AddNode("a", "a"); err != nil {
		t.Fatal(err)
	}
	if err := m1.SetNodeCap("a", 140); err != nil {
		t.Fatal(err)
	}
	if got := readLimit(b); got.Epoch != 1 || got.CapWatts != 140 {
		t.Fatalf("primary push = %+v", got)
	}
	// Standby mirrors desired state without actuating (as journal
	// replay would); needed so its announce round has something to say.
	m2.mu.Lock()
	n2 := m2.nodes["a"]
	n2.desired = ipmi.PowerLimit{Enabled: true, CapWatts: 140}
	n2.haveDesired = true
	m2.mu.Unlock()

	// Heartbeats inside the TTL change nothing.
	clk.advance(4 * time.Second)
	if ch, err := h1.Tick(); err != nil || ch {
		t.Fatalf("live renewal changed leadership: %v, %v", ch, err)
	}
	if ch, err := h2.Tick(); err != nil || ch {
		t.Fatalf("standby stole a live lease: %v, %v", ch, err)
	}

	// m1 dies (stops renewing); the TTL runs out; m2 takes over with a
	// bumped epoch and announces it to the fleet.
	clk.advance(11 * time.Second)
	ch, err := h2.Tick()
	if err != nil || !ch {
		t.Fatalf("takeover = %v, %v", ch, err)
	}
	if m2.Role() != RolePrimary || m2.Epoch() != 2 || promotedAt != 2 {
		t.Fatalf("promoted standby = %v/%d (OnPromote %d)", m2.Role(), m2.Epoch(), promotedAt)
	}
	// The announce round re-pushed the same cap under the new epoch.
	if got := readLimit(b); got.Epoch != 2 || got.CapWatts != 140 {
		t.Fatalf("announce push = %+v, want epoch 2 / 140 W", got)
	}

	// The deposed primary notices on its next heartbeat and steps down.
	ch, err = h1.Tick()
	if err != nil || !ch {
		t.Fatalf("deposed renewal = %v, %v", ch, err)
	}
	if m1.Role() != RoleStandby {
		t.Errorf("deposed primary role = %v, want standby", m1.Role())
	}
	if err := m1.SetNodeCap("a", 100); !errors.Is(err, ErrNotLeader) {
		t.Errorf("deposed primary still actuates: %v", err)
	}
}

func TestHAExpiredSelfReacquireReannounces(t *testing.T) {
	b := newFakeBMC(150)
	m1, _, h1, _, clk := haPair(t, map[string]*fakeBMC{"a": b})
	if _, err := h1.Start(); err != nil {
		t.Fatal(err)
	}
	m1.AddNode("a", "a")
	if err := m1.SetNodeCap("a", 140); err != nil {
		t.Fatal(err)
	}
	// The primary stalls past its own TTL (GC pause, partition from the
	// lease dir) but nobody took over. Re-acquiring bumps the epoch —
	// someone *could* have led in the gap — and re-announces.
	clk.advance(h1.TTL + time.Second)
	ch, err := h1.Tick()
	if err != nil || !ch {
		t.Fatalf("lapsed renewal = %v, %v", ch, err)
	}
	if m1.Epoch() != 2 || m1.Role() != RolePrimary {
		t.Fatalf("re-acquired fencing = %v/%d, want primary/2", m1.Role(), m1.Epoch())
	}
	if got := readLimit(b); got.Epoch != 2 {
		t.Errorf("re-announce epoch = %d, want 2", got.Epoch)
	}
}

func TestHAStepDownHandsOver(t *testing.T) {
	_, m2, h1, h2, _ := haPair(t, map[string]*fakeBMC{})
	if _, err := h1.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := h2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h1.StepDown(); err != nil {
		t.Fatal(err)
	}
	if h1.Mgr.Role() != RoleStandby {
		t.Errorf("stepped-down role = %v", h1.Mgr.Role())
	}
	// No TTL wait: the peer promotes on its very next heartbeat.
	ch, err := h2.Tick()
	if err != nil || !ch {
		t.Fatalf("post-release takeover = %v, %v", ch, err)
	}
	if m2.Role() != RolePrimary || m2.Epoch() != 2 {
		t.Errorf("handed-over fencing = %v/%d", m2.Role(), m2.Epoch())
	}
}

func TestServerLeaderOpAndEpochGate(t *testing.T) {
	b := newFakeBMC(150)
	m := fleet(map[string]*fakeBMC{"a": b})
	m.AddNode("a", "a")
	m.SetFencing(RolePrimary, 4)
	s := NewServer(m)

	r := s.Handle(Request{Op: "leader"})
	if !r.OK || r.Role != "primary" || r.Epoch != 4 || r.Fenced {
		t.Fatalf("leader = %+v", r)
	}
	if r = s.Handle(Request{Op: "nodes"}); !r.OK || r.Role != "primary" || r.Epoch != 4 {
		t.Fatalf("nodes HA fields = %+v", r)
	}

	// A mutating op carrying a stale epoch is refused before it touches
	// the manager; without an epoch it passes (legacy clients).
	r = s.Handle(Request{Op: "setcap", Name: "a", Cap: 140, Epoch: 3})
	if r.OK || !strings.Contains(r.Error, "stale client epoch") {
		t.Fatalf("stale-epoch setcap = %+v", r)
	}
	if got := readLimit(b); got.Enabled {
		t.Fatalf("stale-epoch setcap actuated: %+v", got)
	}
	if r = s.Handle(Request{Op: "setcap", Name: "a", Cap: 140, Epoch: 4}); !r.OK {
		t.Fatalf("current-epoch setcap = %+v", r)
	}
	if r = s.Handle(Request{Op: "setcap", Name: "a", Cap: 135}); !r.OK {
		t.Fatalf("epochless setcap = %+v", r)
	}

	// Reads are never epoch-gated: a dashboard with a stale cursor
	// still sees the fleet.
	if r = s.Handle(Request{Op: "nodes", Epoch: 1}); !r.OK {
		t.Fatalf("stale-epoch read refused: %+v", r)
	}

	// SetManager swaps the served manager (promotion in a daemon).
	m2 := fleet(map[string]*fakeBMC{})
	m2.SetFencing(RoleStandby, 4)
	s.SetManager(m2)
	if r = s.Handle(Request{Op: "leader"}); r.Role != "standby" {
		t.Fatalf("leader after swap = %+v", r)
	}
	if r = s.Handle(Request{Op: "setcap", Name: "a", Cap: 120}); r.OK {
		t.Fatal("standby-served setcap succeeded")
	}
}

func TestLeaderChangeAndFencedTraceEvents(t *testing.T) {
	b := newFakeBMC(150)
	m1, _, h1, h2, clk := haPair(t, map[string]*fakeBMC{"a": b})
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTrace(64)
	m1.SetTelemetry(reg, tr)
	h2.Mgr.SetTelemetry(reg, tr)

	if _, err := h1.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := h2.Start(); err != nil {
		t.Fatal(err)
	}
	m1.AddNode("a", "a")
	clk.advance(h1.TTL + time.Second)
	if _, err := h2.Tick(); err != nil {
		t.Fatal(err)
	}
	b.mu.Lock()
	b.setErr = ipmi.ErrStaleEpoch
	b.mu.Unlock()
	m1.SetNodeCap("a", 100) // deposed push bounces

	var leaderEvs, fencedEvs int
	for _, ev := range tr.Tail(64, "") {
		switch ev.Kind {
		case telemetry.EvLeaderChange:
			leaderEvs++
		case telemetry.EvFenced:
			fencedEvs++
		}
	}
	if leaderEvs < 2 { // m1 promoted at start, m2 promoted at takeover
		t.Errorf("leader-change events = %d, want >= 2", leaderEvs)
	}
	if fencedEvs != 1 {
		t.Errorf("fenced events = %d, want 1", fencedEvs)
	}
	snap := reg.Snapshot()
	if v := snap.Counters["dcm_leader_changes_total"]; v < 2 {
		t.Errorf("dcm_leader_changes_total = %v", v)
	}
	if v := snap.Counters["dcm_fenced_pushes_total"]; v != 1 {
		t.Errorf("dcm_fenced_pushes_total = %v", v)
	}
}
