package dcm

import (
	"sort"
	"time"

	"nodecap/internal/telemetry"
)

// Gray-failure defense: per-node circuit breakers (DESIGN.md §12).
//
// Hard failures (dead connections) are already handled by the redial
// backoff; the breaker exists for the failure mode that dominates at
// scale — nodes that are slow-but-alive. A BMC answering just under
// the request timeout occupies a poll worker for the whole exchange,
// so a herd of them head-of-line-blocks the sweep. The breaker tracks
// each node's exchange latency (EWMA plus a P² streaming quantile)
// and, when a node is persistently slow or persistently failing,
// opens: the node is skipped until a hold expires, then a single
// half-open probe decides between closing and re-opening. Nodes that
// cycle open/closed within a window are flapping and get quarantined
// under a longer hold, so the fleet stops paying the probe tax for a
// link that cannot hold a verdict.
//
// Cap pushes never consult the breaker: delivering a cap to a sick
// node is exactly the safety-critical operation the defense layer
// exists to protect (they ride the priority lane instead).

// Breaker tuning defaults. A zero BreakerConfig resolves to
// consecutive-failure tripping only; latency tripping, flap detection
// and quarantine each require their threshold to be set.
const (
	// DefaultFailureThreshold is how many consecutive failed exchanges
	// trip the breaker open when BreakerConfig.FailureThreshold is 0.
	DefaultFailureThreshold = 5
	// DefaultSlowConsecutive is how many consecutive over-threshold
	// exchanges trip the breaker when SlowConsecutive is 0.
	DefaultSlowConsecutive = 3
	// DefaultLatencyAlpha is the EWMA smoothing factor when
	// LatencyAlpha is 0.
	DefaultLatencyAlpha = 0.2
	// DefaultStarveSkips is how many consecutive busy-skips of one
	// node's poll slot emit an EvBusyStarve trace event.
	DefaultStarveSkips = 3
	// maxShedLevel caps brownout escalation: level 1 drops history
	// enrichment, level 2 also quarters open-breaker probe cadence.
	maxShedLevel = 2
)

// BreakerConfig tunes the per-node circuit breakers. The zero value
// enables consecutive-failure tripping with package defaults; latency
// tripping engages only when SlowThreshold > 0, and flap quarantine
// only when FlapMax > 0. FailureThreshold < 0 disables the breaker
// entirely (every node is always pollable).
type BreakerConfig struct {
	// FailureThreshold opens the breaker after this many consecutive
	// failed exchanges (0 = DefaultFailureThreshold; < 0 disables the
	// breaker).
	FailureThreshold int

	// SlowThreshold is the exchange latency beyond which a successful
	// sample still counts against the node; SlowConsecutive such
	// exchanges in a row open the breaker. 0 disables latency tripping.
	SlowThreshold   time.Duration
	SlowConsecutive int

	// OpenTimeout is how long an open breaker holds before granting a
	// half-open probe (0 = the manager's RetryMaxDelay).
	OpenTimeout time.Duration

	// FlapWindow/FlapMax: a breaker opening FlapMax times within
	// FlapWindow quarantines the node under QuarantineHold
	// (0 = 4×OpenTimeout). FlapMax 0 disables flap detection.
	FlapWindow     time.Duration
	FlapMax        int
	QuarantineHold time.Duration

	// LatencyAlpha is the EWMA smoothing factor in (0,1]
	// (0 = DefaultLatencyAlpha).
	LatencyAlpha float64
}

// disabled reports whether the breaker is switched off outright.
func (c BreakerConfig) disabled() bool { return c.FailureThreshold < 0 }

// failureThreshold / slowConsecutive / alpha resolve zero fields.
func (c BreakerConfig) failureThreshold() int {
	if c.FailureThreshold == 0 {
		return DefaultFailureThreshold
	}
	return c.FailureThreshold
}

func (c BreakerConfig) slowConsecutive() int {
	if c.SlowConsecutive <= 0 {
		return DefaultSlowConsecutive
	}
	return c.SlowConsecutive
}

func (c BreakerConfig) alpha() float64 {
	if c.LatencyAlpha <= 0 || c.LatencyAlpha > 1 {
		return DefaultLatencyAlpha
	}
	return c.LatencyAlpha
}

// openTimeout resolves the open hold against the manager's backoff cap.
func (c BreakerConfig) openTimeout(retryMax time.Duration) time.Duration {
	if c.OpenTimeout > 0 {
		return c.OpenTimeout
	}
	if retryMax > 0 {
		return retryMax
	}
	return DefaultRetryMaxDelay
}

func (c BreakerConfig) quarantineHold(retryMax time.Duration) time.Duration {
	if c.QuarantineHold > 0 {
		return c.QuarantineHold
	}
	return 4 * c.openTimeout(retryMax)
}

// Breaker state names, surfaced verbatim in NodeStatus.Breaker and the
// dcmctl nodes BREAKER column.
const (
	BreakerClosed      = "closed"
	BreakerOpen        = "open"
	BreakerHalfOpen    = "half-open"
	BreakerQuarantined = "quarantined"
)

// breaker is one node's circuit-breaker state. All fields are guarded
// by Manager.mu; transitions happen under it and are traced there.
type breaker struct {
	state      string // one of the Breaker* names; "" means closed
	until      time.Time
	consecSlow int
	shedSkips  int // probe-cadence counter while shedding (brownout)

	// opens holds recent open-transition times inside FlapWindow
	// (bounded by FlapMax, which is small).
	opens []time.Time

	ewmaNS float64
	p99    p2Quantile
}

func (b *breaker) stateName() string {
	if b.state == "" {
		return BreakerClosed
	}
	return b.state
}

// brkAllow decides whether the poll loop may sample the node this
// round, transitioning open→half-open once the hold expires. Under
// deep brownout shedding (shed >= maxShedLevel), open-breaker probes
// run at a quarter of the eligible cadence — the lowest-value work
// goes first. Callers hold m.mu.
func (m *Manager) brkAllow(n *managedNode, now time.Time, shed int) bool {
	if m.Breaker.disabled() {
		return true
	}
	b := &n.brk
	switch b.stateName() {
	case BreakerClosed, BreakerHalfOpen:
		// Half-open is transient: the in-flight probe's outcome always
		// resolves it (success closes, failure re-opens), and the
		// ownership token admits one operation at a time anyway.
		return true
	default: // open or quarantined
		if m.BreakerNeverProbes {
			return false // harness self-test: a breaker that never heals
		}
		if now.Before(b.until) {
			return false
		}
		if shed >= maxShedLevel {
			if b.shedSkips++; b.shedSkips%4 != 0 {
				return false
			}
		}
		b.state = BreakerHalfOpen
		n.status.Breaker = BreakerHalfOpen
		m.tel.trace.Append(telemetry.Event{Node: n.name, Kind: telemetry.EvBreakerHalfOpen})
		return true
	}
}

// brkTrip opens the node's breaker (closed or half-open → open),
// arming the hold and running flap detection. Callers hold m.mu.
func (m *Manager) brkTrip(n *managedNode, now time.Time, reason string) {
	if m.Breaker.disabled() {
		return
	}
	b := &n.brk
	if s := b.stateName(); s == BreakerOpen || s == BreakerQuarantined {
		return // already held; the hold is not extended, so probes stay bounded
	}
	hold := m.Breaker.openTimeout(m.RetryMaxDelay)
	b.state = BreakerOpen
	b.until = now.Add(hold)
	b.consecSlow = 0
	n.status.Breaker = BreakerOpen
	n.status.BreakerOpens++
	m.tel.breakerOpens.Inc()
	m.tel.trace.Append(telemetry.Event{
		Node: n.name, Kind: telemetry.EvBreakerOpen,
		N: int64(n.status.BreakerOpens), Err: reason,
	})

	if m.Breaker.FlapMax > 0 && m.Breaker.FlapWindow > 0 {
		cut := now.Add(-m.Breaker.FlapWindow)
		keep := b.opens[:0]
		for _, t := range b.opens {
			if t.After(cut) {
				keep = append(keep, t)
			}
		}
		b.opens = append(keep, now)
		if len(b.opens) >= m.Breaker.FlapMax {
			b.state = BreakerQuarantined
			b.until = now.Add(m.Breaker.quarantineHold(m.RetryMaxDelay))
			b.opens = b.opens[:0]
			n.status.Breaker = BreakerQuarantined
			m.tel.quarantines.Inc()
			m.tel.trace.Append(telemetry.Event{
				Node: n.name, Kind: telemetry.EvQuarantine, Err: reason,
			})
		}
	}
}

// brkClose closes the breaker after a healthy exchange (the half-open
// probe succeeded, or a cap push proved the node responsive). Callers
// hold m.mu.
func (m *Manager) brkClose(n *managedNode) {
	b := &n.brk
	if b.stateName() == BreakerClosed {
		return
	}
	b.state = BreakerClosed
	b.until = time.Time{}
	b.consecSlow = 0
	b.shedSkips = 0
	n.status.Breaker = BreakerClosed
	m.tel.breakerCloses.Inc()
	m.tel.trace.Append(telemetry.Event{Node: n.name, Kind: telemetry.EvBreakerClose})
}

// noteExchange records one successful sample exchange's latency:
// EWMA + P² quantile for the status columns and the latency histogram,
// then the latency-trip decision — SlowConsecutive over-threshold
// exchanges open the breaker even though every one of them succeeded
// (slow-but-alive is the gray failure). A fast exchange closes a
// half-open breaker. Callers must NOT hold m.mu.
func (m *Manager) noteExchange(n *managedNode, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tel.exchangeSeconds.Observe(elapsed.Seconds())
	b := &n.brk
	a := m.Breaker.alpha()
	if b.ewmaNS == 0 {
		b.ewmaNS = float64(elapsed.Nanoseconds())
	} else {
		b.ewmaNS += a * (float64(elapsed.Nanoseconds()) - b.ewmaNS)
	}
	b.p99.Observe(float64(elapsed.Nanoseconds()))
	n.status.LatencyEWMA = time.Duration(b.ewmaNS)
	n.status.LatencyP99 = time.Duration(b.p99.Value())

	if m.Breaker.disabled() {
		return
	}
	slow := m.Breaker.SlowThreshold > 0 && elapsed > m.Breaker.SlowThreshold
	if slow {
		b.consecSlow++
		if b.consecSlow >= m.Breaker.slowConsecutive() {
			m.brkTrip(n, m.wallNow(), "slow")
		}
		return
	}
	b.consecSlow = 0
	if b.stateName() == BreakerHalfOpen {
		m.brkClose(n)
	}
}

// brkOnFailure runs the failure-count trip after recordFailure has
// bumped ConsecFailures: threshold reached, or any failure during a
// half-open probe, re-opens. Callers hold m.mu.
func (m *Manager) brkOnFailure(n *managedNode, now time.Time, err error) {
	if m.Breaker.disabled() {
		return
	}
	if n.brk.stateName() == BreakerHalfOpen || n.status.ConsecFailures >= m.Breaker.failureThreshold() {
		// Re-arm from half-open too: the probe failed, so the hold
		// restarts from now.
		n.brk.state = BreakerClosed // let brkTrip re-open (and count the flap)
		m.brkTrip(n, now, err.Error())
	}
}

// p2Quantile is the P² streaming quantile estimator (Jain & Chlamtac,
// CACM 1985): five markers track the running quantile in O(1) space
// and O(1) per observation, no sample buffer. Deterministic — the
// estimate is a pure function of the observation sequence — which is
// what lets the chaos harness replay latency verdicts bit-identically.
type p2Quantile struct {
	p    float64    // target quantile, e.g. 0.99
	n    int        // observations seen
	q    [5]float64 // marker heights
	pos  [5]float64 // actual marker positions (1-based)
	want [5]float64 // desired marker positions
	inc  [5]float64 // desired-position increments per observation
}

// Observe folds one sample into the estimate.
func (e *p2Quantile) Observe(v float64) {
	p := e.p
	if p <= 0 || p >= 1 {
		p = 0.99
		e.p = p
	}
	if e.n < 5 {
		e.q[e.n] = v
		e.n++
		if e.n == 5 {
			sort.Float64s(e.q[:])
			for i := range e.pos {
				e.pos[i] = float64(i + 1)
			}
			e.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
			e.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
		}
		return
	}
	e.n++

	// Find the cell v falls into, widening the extremes if needed.
	var k int
	switch {
	case v < e.q[0]:
		e.q[0] = v
		k = 0
	case v >= e.q[4]:
		e.q[4] = v
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if v < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := range e.want {
		e.want[i] += e.inc[i]
	}

	// Nudge interior markers toward their desired positions with the
	// piecewise-parabolic (P²) update, falling back to linear when the
	// parabola would cross a neighbour.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			qp := e.parabolic(i, s)
			if e.q[i-1] < qp && qp < e.q[i+1] {
				e.q[i] = qp
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
}

func (e *p2Quantile) parabolic(i int, s float64) float64 {
	return e.q[i] + s/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+s)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-s)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

func (e *p2Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// Value returns the current quantile estimate (the exact order
// statistic while fewer than five samples have arrived).
func (e *p2Quantile) Value() float64 {
	if e.n == 0 {
		return 0
	}
	if e.n < 5 {
		s := make([]float64, e.n)
		copy(s, e.q[:e.n])
		sort.Float64s(s)
		p := e.p
		if p <= 0 || p >= 1 {
			p = 0.99
		}
		i := int(p * float64(e.n))
		if i >= e.n {
			i = e.n - 1
		}
		return s[i]
	}
	return e.q[2]
}
