package dcm

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"nodecap/internal/dcm/store"
	"nodecap/internal/telemetry"
)

// Allocation is one node's share of a group budget.
type Allocation struct {
	Name     string
	CapWatts float64
}

// demand is the input to the water-filling allocator.
type demand struct {
	name     string
	want     float64 // recent average power + headroom
	min, max float64 // platform cap range
	// weight scales the node's claim on contested budget (0 means 1):
	// shares go demand×weight-proportionally, so a high-tier serving
	// node outbids batch nodes without inflating its actual demand.
	weight float64
}

// AllocateBudget divides budgetWatts across the named nodes in
// proportion to their recent demand, clamped to each platform's
// feasible cap range, by iterative water-filling:
//
//  1. Every node is granted at least its platform minimum (a cap below
//     the floor cannot be honoured and only burns performance — the
//     paper's 120 W rows).
//  2. Remaining budget is distributed demand-proportionally; nodes
//     that saturate their demand or platform maximum return the excess
//     to the pool, which is re-divided among the rest.
//
// An unreachable node whose last good exchange is older than
// StaleAfter is granted only its platform minimum: its frozen
// Last.AverageWatts is ghost demand that would otherwise keep stealing
// budget from live nodes.
//
// It fails when the budget cannot cover the platform minimums.
//
// Node weights default to each node's tier (TierHigh counts
// DefaultHighTierWeight, TierLow counts 1); AllocateBudgetWeighted
// accepts explicit overrides.
func (m *Manager) AllocateBudget(budgetWatts float64, names []string) ([]Allocation, error) {
	return m.AllocateBudgetWeighted(budgetWatts, names, nil)
}

// AllocateBudgetWeighted is AllocateBudget with explicit per-node
// priority weights. A node missing from weights (or any node, when
// weights is nil) falls back to its tier's default weight. Weights
// must be positive.
func (m *Manager) AllocateBudgetWeighted(budgetWatts float64, names []string, weights map[string]float64) ([]Allocation, error) {
	staleAfter := m.StaleAfter
	if staleAfter <= 0 {
		staleAfter = DefaultStaleAfter
	}
	for name, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("dcm: non-positive weight %v for node %q", w, name)
		}
	}
	// The manager's clock, not time.Now(): staleness verdicts must be a
	// function of injected time so replayed runs are bit-identical.
	now := m.wallNow()
	demands := make([]demand, 0, len(names))
	m.mu.Lock()
	for _, name := range names {
		n, ok := m.nodes[name]
		if !ok {
			m.mu.Unlock()
			return nil, fmt.Errorf("dcm: unknown node %q", name)
		}
		stale := !n.status.Reachable &&
			(n.status.LastOKAt.IsZero() || now.Sub(n.status.LastOKAt) > staleAfter)
		want := n.status.Last.AverageWatts
		if want <= 0 {
			want = n.status.MaxCapWatts
		}
		want *= 1.05 // headroom so a fitting node is not throttled
		d := demand{
			name: name, want: want,
			min: n.status.MinCapWatts, max: n.status.MaxCapWatts,
			weight: tierWeight(n.status.Tier),
		}
		if w, ok := weights[name]; ok {
			d.weight = w
		}
		if stale {
			// Pin the grant to the platform minimum: ceiling as well as
			// floor, so surplus budget cannot spill back into a node
			// that cannot even be told about it.
			d.want = d.min
			d.max = d.min
		}
		demands = append(demands, d)
	}
	m.mu.Unlock()
	return waterfill(budgetWatts, demands)
}

// ApplyBudget allocates and pushes the resulting caps. A failed push
// does not stop the sweep — the remaining nodes still get their caps
// (and the failed node's desired state is recorded, so reconciliation
// re-pushes it when the node returns); all push failures are joined
// into the returned error.
//
// Caps are pushed decreases-first: nodes whose new cap is at or below
// their current contribution are journaled and pushed before nodes
// whose cap rises. Any prefix of the push sequence then sums to at
// most the budget, so a crash (or partition) mid-sweep can never
// freeze the fleet in an over-budget state — shrinking one node's
// share before growing another's is the only order for which that
// holds. The returned slice is in push order.
func (m *Manager) ApplyBudget(budgetWatts float64, names []string) ([]Allocation, error) {
	return m.ApplyBudgetWeighted(budgetWatts, names, nil)
}

// ApplyBudgetWeighted is ApplyBudget with explicit per-node priority
// weights (see AllocateBudgetWeighted).
func (m *Manager) ApplyBudgetWeighted(budgetWatts float64, names []string, weights map[string]float64) ([]Allocation, error) {
	m.mu.Lock()
	standby := m.role == RoleStandby
	m.mu.Unlock()
	if standby {
		return nil, ErrNotLeader
	}
	allocs, err := m.AllocateBudgetWeighted(budgetWatts, names, weights)
	if err != nil {
		return nil, err
	}

	// A node's current contribution to the enforced total is its
	// enabled desired cap, or zero when it has none.
	contribution := make(map[string]float64, len(allocs))
	m.mu.Lock()
	for _, a := range allocs {
		if n, ok := m.nodes[a.Name]; ok && n.haveDesired && n.desired.Enabled {
			contribution[a.Name] = n.desired.CapWatts
		}
	}
	m.mu.Unlock()
	ordered := make([]Allocation, 0, len(allocs))
	for _, a := range allocs { // decreases (and no-ops) first
		if a.CapWatts <= contribution[a.Name] {
			ordered = append(ordered, a)
		}
	}
	for _, a := range allocs { // then increases and first-time caps
		if a.CapWatts > contribution[a.Name] {
			ordered = append(ordered, a)
		}
	}

	var errs []error
	for _, a := range ordered {
		if err := m.SetNodeCap(a.Name, a.CapWatts); err != nil {
			errs = append(errs, err)
		}
	}
	m.mu.Lock()
	m.tel.budgetReallocs.Inc()
	m.tel.trace.Append(telemetry.Event{
		Kind: telemetry.EvBudgetRealloc, Watts: budgetWatts, N: int64(len(ordered)),
	})
	m.mu.Unlock()
	return ordered, errors.Join(errs...)
}

// StartAutoBalance re-divides budgetWatts across the named nodes every
// interval, tracking demand as it shifts — the continuous mode the DCM
// product runs in. Re-arming while a loop is running replaces it: the
// old loop is stopped and the new budget takes over (an operator
// resizing the fleet's budget must not be silently ignored). Stop with
// StopAutoBalance (or Close).
func (m *Manager) StartAutoBalance(budgetWatts float64, names []string, interval time.Duration) {
	stop := make(chan struct{})
	m.mu.Lock()
	if m.stopBalance != nil {
		// Swap under one critical section so two concurrent re-arms
		// cannot both believe they own the loop.
		close(m.stopBalance)
	}
	m.stopBalance = stop
	m.mu.Unlock()

	// Journal the budget so a restarted manager can re-arm it (see
	// RestoredBudget); failures are non-fatal — the balance loop still
	// runs, it just will not survive a restart.
	_ = m.journalBudget(&store.BudgetRecord{
		Watts: budgetWatts, Group: names, Interval: interval,
	})

	m.pollWG.Add(1)
	go func() {
		defer m.pollWG.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				m.Poll()
				// Allocation failures (a node went away, budget became
				// infeasible) leave the previous caps standing; the
				// next tick retries.
				_, _ = m.ApplyBudget(budgetWatts, names)
			}
		}
	}()
}

// StopAutoBalance halts the rebalancing loop and clears the journaled
// budget so a restart does not resurrect it. (Close stops the loop
// without clearing the journal — a shut-down manager's budget is
// still its intent, and the restarted daemon re-arms it via
// RestoredBudget.)
func (m *Manager) StopAutoBalance() {
	if m.stopBalanceLoop() {
		_ = m.journalBudget(nil)
	}
}

// stopBalanceLoop halts the loop; reports whether one was running.
func (m *Manager) stopBalanceLoop() bool {
	m.mu.Lock()
	stop := m.stopBalance
	m.stopBalance = nil
	m.mu.Unlock()
	if stop == nil {
		return false
	}
	close(stop)
	return true
}

// waterfill implements the allocation; exposed separately for direct
// testing.
//
// The input is canonicalized to name order before any distribution, so
// the result is a pure function of the demand *set*: both the
// iterative rounding drift and the spare-budget pass would otherwise
// leak the caller's argument order into the grants, and two managers
// balancing the same group from differently-ordered configs would
// push different caps.
func waterfill(budget float64, demands []demand) ([]Allocation, error) {
	if len(demands) == 0 {
		return nil, fmt.Errorf("dcm: empty node group")
	}
	demands = append([]demand(nil), demands...)
	sort.Slice(demands, func(i, j int) bool { return demands[i].name < demands[j].name })
	var minSum float64
	for _, d := range demands {
		if d.min < 0 || d.max < d.min {
			return nil, fmt.Errorf("dcm: node %q has invalid cap range [%v, %v]", d.name, d.min, d.max)
		}
		minSum += d.min
	}
	if budget < minSum {
		return nil, fmt.Errorf("dcm: budget %.1f W below platform minimums %.1f W", budget, minSum)
	}

	grant := make(map[string]float64, len(demands))
	for _, d := range demands {
		grant[d.name] = d.min
	}
	remaining := budget - minSum

	// Iteratively hand out the pool demand×weight-proportionally; a
	// node's grant saturates at min(want, max). Weights shape who wins
	// contested watts, never how many watts a node can absorb.
	active := append([]demand(nil), demands...)
	for remaining > 1e-9 && len(active) > 0 {
		var wantSum float64
		for _, d := range active {
			wantSum += d.want * weightOf(d)
		}
		if wantSum <= 0 {
			break
		}
		next := active[:0]
		distributed := false
		for _, d := range active {
			share := remaining * d.want * weightOf(d) / wantSum
			ceiling := d.want
			if d.max < ceiling {
				ceiling = d.max
			}
			room := ceiling - grant[d.name]
			if room <= 0 {
				continue
			}
			give := share
			if give > room {
				give = room
			}
			if give > 0 {
				grant[d.name] += give
				distributed = true
			}
			if grant[d.name] < ceiling-1e-9 {
				next = append(next, d)
			}
		}
		var granted float64
		for _, d := range demands {
			granted += grant[d.name]
		}
		remaining = budget - granted
		active = next
		if !distributed {
			break
		}
	}
	// Spare budget (everyone satisfied): raise caps toward platform
	// maximums so nobody is throttled needlessly. Canonical (name)
	// order, established above.
	if remaining > 1e-9 {
		for i := range demands {
			d := demands[i]
			room := d.max - grant[d.name]
			if room <= 0 {
				continue
			}
			give := remaining
			if give > room {
				give = room
			}
			grant[d.name] += give
			remaining -= give
			if remaining <= 1e-9 {
				break
			}
		}
	}

	out := make([]Allocation, 0, len(demands))
	for _, d := range demands { // already in name order
		out = append(out, Allocation{Name: d.name, CapWatts: grant[d.name]})
	}
	return out, nil
}

// weightOf reads a demand's weight, defaulting zero to 1 so direct
// waterfill callers (tests) need not set it.
func weightOf(d demand) float64 {
	if d.weight <= 0 {
		return 1
	}
	return d.weight
}
