package dcm

import (
	"fmt"
	"testing"
	"time"

	"nodecap/internal/faults"
)

// TestFleetDegradation is the fleet-scale integration test: several
// agents served over the real IPMI wire protocol behind fault
// transports, a subset killed mid-sweep and later revived. The
// survivors must keep being polled throughout, and the revived nodes
// must reappear Reachable within the backoff bound.
func TestFleetDegradation(t *testing.T) {
	const n = 5
	m, addrs, transports := faultFleet(t, n)
	for i, addr := range addrs {
		if err := m.AddNode(fmt.Sprintf("n%d", i), addr); err != nil {
			t.Fatal(err)
		}
	}
	names := func() map[string]NodeStatus {
		out := make(map[string]NodeStatus)
		for _, st := range m.Nodes() {
			out[st.Name] = st
		}
		return out
	}

	m.Poll()
	for name, st := range names() {
		if !st.Reachable {
			t.Fatalf("%s unreachable before any fault: %+v", name, st)
		}
	}

	// Kill n1 and n3 mid-sweep: established connections blackhole and
	// redials are refused — a partitioned rack.
	dead := faults.Profile{DropWrites: true, DialErrorProb: 1}
	transports[1].SetProfile(dead)
	transports[3].SetProfile(dead)

	// Sweep a few rounds. Survivors must keep producing samples.
	beforeHist := map[string]int{}
	for _, i := range []int{0, 2, 4} {
		h, err := m.History(fmt.Sprintf("n%d", i))
		if err != nil {
			t.Fatal(err)
		}
		beforeHist[fmt.Sprintf("n%d", i)] = len(h)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		m.Poll()
		ns := names()
		if !ns["n1"].Reachable && !ns["n3"].Reachable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("killed nodes still reachable: n1=%+v n3=%+v", ns["n1"], ns["n3"])
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, i := range []int{0, 2, 4} {
		name := fmt.Sprintf("n%d", i)
		h, err := m.History(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(h) <= beforeHist[name] {
			t.Errorf("%s stopped being polled while neighbours were down", name)
		}
		if !names()[name].Reachable {
			t.Errorf("%s marked unreachable by neighbours' faults", name)
		}
	}

	// Revive. RetryMaxDelay bounds the redial gate, so recovery must
	// land within a few backoff windows of polling.
	transports[1].SetProfile(faults.Profile{})
	transports[3].SetProfile(faults.Profile{})
	deadline = time.Now().Add(10 * time.Second)
	for {
		m.Poll()
		ns := names()
		if ns["n1"].Reachable && ns["n3"].Reachable {
			for _, name := range []string{"n1", "n3"} {
				if ns[name].Reconnects == 0 {
					t.Errorf("%s recovered without a recorded reconnect: %+v", name, ns[name])
				}
				if ns[name].ConsecFailures != 0 || ns[name].LastError != "" {
					t.Errorf("%s health not cleared after recovery: %+v", name, ns[name])
				}
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("revived nodes never recovered: n1=%+v n3=%+v", ns["n1"], ns["n3"])
		}
		time.Sleep(5 * time.Millisecond)
	}
}
