package dcm_test

import (
	"fmt"

	"nodecap/internal/dcm"
	"nodecap/internal/ipmi"
	"nodecap/internal/machine"
	"nodecap/internal/nodeagent"
)

// Bring up a simulated node behind its BMC, register it with the Data
// Center Manager over IPMI/TCP, and push a capping policy — the
// paper's management architecture end to end, in-process.
func Example() {
	agent := nodeagent.New(machine.Romley(), nodeagent.Options{})
	defer agent.Stop()

	srv := ipmi.NewServer(agent)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer srv.Close()

	mgr := dcm.NewManager(nil)
	defer mgr.Close()
	if err := mgr.AddNode("node-0", addr); err != nil {
		panic(err)
	}
	if err := mgr.SetNodeCap("node-0", 140); err != nil {
		panic(err)
	}
	mgr.Poll()

	n := mgr.Nodes()[0]
	fmt.Printf("node %s: cap %.0f W enabled=%v reachable=%v\n",
		n.Name, n.CapWatts, n.CapEnabled, n.Reachable)
	fmt.Printf("platform floor advertised: %v\n", n.MinCapWatts > 120 && n.MinCapWatts < 126)
	// Output:
	// node node-0: cap 140 W enabled=true reachable=true
	// platform floor advertised: true
}
