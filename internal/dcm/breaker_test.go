package dcm

import (
	"sync/atomic"
	"testing"
	"time"

	"nodecap/internal/ipmi"
	"nodecap/internal/telemetry"
)

// testClock is a manually-advanced wall clock, so breaker-hold tests
// never sleep and never race real time.
type testClock struct{ ns atomic.Int64 }

func (c *testClock) now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *testClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

// slowBMC advances the test clock inside GetPowerReading, so the
// manager measures exactly lag of exchange latency — deterministic
// latency-trip tests without wall-clock sleeps.
type slowBMC struct {
	flakyBMC
	clk *testClock
	lag atomic.Int64 // simulated exchange latency, ns
}

func (s *slowBMC) GetPowerReading() (ipmi.PowerReading, error) {
	s.clk.advance(time.Duration(s.lag.Load()))
	return ipmi.PowerReading{CurrentWatts: 150, AverageWatts: 150}, nil
}

func traceHas(evs []telemetry.Event, kind string) bool {
	for _, ev := range evs {
		if ev.Kind == kind {
			return true
		}
	}
	return false
}

// TestBreakerOpensAndRecovers walks the full state machine: three
// consecutive failures trip the breaker open, the open hold stops all
// dialing, and once the hold expires a single half-open probe against
// a recovered node closes it.
func TestBreakerOpensAndRecovers(t *testing.T) {
	clk := &testClock{}
	var dials atomic.Int32
	flaky := &flakyBMC{}
	m := NewManager(func(addr string) (BMC, error) {
		dials.Add(1)
		return flaky, nil
	})
	defer m.Close()
	m.Clock = clk.now
	m.RetryBaseDelay = time.Nanosecond
	m.RetryMaxDelay = 2 * time.Nanosecond
	m.Breaker = BreakerConfig{FailureThreshold: 3, OpenTimeout: time.Second}
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTrace(256)
	m.SetTelemetry(reg, tr)

	if err := m.AddNode("n", "x"); err != nil {
		t.Fatal(err)
	}
	flaky.setFail(true)
	for i := 0; i < 3; i++ {
		clk.advance(time.Microsecond)
		m.Poll()
	}
	st := m.Nodes()[0]
	if st.Breaker != BreakerOpen || st.BreakerOpens != 1 {
		t.Fatalf("after 3 failures breaker = %q (opens %d), want open/1", st.Breaker, st.BreakerOpens)
	}
	if !traceHas(tr.Tail(64, "n"), telemetry.EvBreakerOpen) {
		t.Error("no breaker-open trace event")
	}

	// An open breaker means the node is not dialed at all — not even a
	// redial attempt — until the hold expires.
	before := dials.Load()
	for i := 0; i < 5; i++ {
		clk.advance(time.Microsecond)
		m.Poll()
	}
	if got := dials.Load(); got != before {
		t.Errorf("open breaker still dialed %d times", got-before)
	}

	// Hold expiry grants one half-open probe; the node recovered, so
	// the probe closes the breaker and normal polling resumes.
	flaky.setFail(false)
	clk.advance(2 * time.Second)
	m.Poll()
	st = m.Nodes()[0]
	if st.Breaker != BreakerClosed || !st.Reachable {
		t.Fatalf("after healthy probe breaker = %q reachable=%v, want closed/true", st.Breaker, st.Reachable)
	}
	evs := tr.Tail(64, "n")
	if !traceHas(evs, telemetry.EvBreakerHalfOpen) || !traceHas(evs, telemetry.EvBreakerClose) {
		t.Error("half-open/close transitions not traced")
	}
	if reg.Snapshot().Counters["dcm_breaker_closes_total"] == 0 {
		t.Error("dcm_breaker_closes_total not incremented")
	}
}

// TestBreakerLatencyTrip: exchanges that *succeed* but run over
// SlowThreshold for SlowConsecutive rounds open the breaker —
// slow-but-alive is the gray failure the layer exists for.
func TestBreakerLatencyTrip(t *testing.T) {
	clk := &testClock{}
	stub := &slowBMC{clk: clk}
	m := NewManager(func(addr string) (BMC, error) { return stub, nil })
	defer m.Close()
	m.Clock = clk.now
	m.Breaker = BreakerConfig{
		SlowThreshold:   time.Millisecond,
		SlowConsecutive: 2,
		OpenTimeout:     time.Second,
	}
	tr := telemetry.NewTrace(256)
	m.SetTelemetry(telemetry.NewRegistry(), tr)
	if err := m.AddNode("n", "x"); err != nil {
		t.Fatal(err)
	}

	stub.lag.Store(int64(5 * time.Millisecond))
	clk.advance(time.Microsecond)
	m.Poll()
	st := m.Nodes()[0]
	if st.Breaker != BreakerClosed {
		t.Fatalf("breaker tripped after a single slow exchange: %q", st.Breaker)
	}
	if st.LatencyEWMA < time.Millisecond {
		t.Errorf("LatencyEWMA = %v after a 5ms exchange", st.LatencyEWMA)
	}
	clk.advance(time.Microsecond)
	m.Poll()
	st = m.Nodes()[0]
	if st.Breaker != BreakerOpen {
		t.Fatalf("breaker = %q after %d slow exchanges, want open", st.Breaker, 2)
	}
	if !st.Reachable {
		t.Error("latency trip marked a live node unreachable")
	}
	for _, ev := range tr.Tail(64, "n") {
		if ev.Kind == telemetry.EvBreakerOpen && ev.Err != "slow" {
			t.Errorf("latency trip reason = %q, want slow", ev.Err)
		}
	}
}

// TestBreakerFlapQuarantine: a breaker that re-opens FlapMax times
// inside the flap window parks the node in quarantine under the longer
// hold — the fleet stops paying the probe tax for a link that cannot
// hold a verdict.
func TestBreakerFlapQuarantine(t *testing.T) {
	clk := &testClock{}
	flaky := &flakyBMC{}
	m := NewManager(func(addr string) (BMC, error) { return flaky, nil })
	defer m.Close()
	m.Clock = clk.now
	m.RetryBaseDelay = time.Nanosecond
	m.RetryMaxDelay = 2 * time.Nanosecond
	m.Breaker = BreakerConfig{
		FailureThreshold: 1,
		OpenTimeout:      time.Microsecond,
		FlapWindow:       time.Hour,
		FlapMax:          2,
		QuarantineHold:   time.Hour,
	}
	tr := telemetry.NewTrace(256)
	m.SetTelemetry(telemetry.NewRegistry(), tr)
	if err := m.AddNode("n", "x"); err != nil {
		t.Fatal(err)
	}
	flaky.setFail(true)

	clk.advance(time.Millisecond)
	m.Poll() // first failure trips open
	clk.advance(time.Millisecond)
	m.Poll() // half-open probe fails: second open inside the window → quarantine
	st := m.Nodes()[0]
	if st.Breaker != BreakerQuarantined {
		t.Fatalf("breaker = %q after flapping, want quarantined", st.Breaker)
	}
	if !traceHas(tr.Tail(64, "n"), telemetry.EvQuarantine) {
		t.Error("no quarantine trace event")
	}

	// Quarantine outlasts the ordinary open hold by design.
	clk.advance(time.Minute)
	m.Poll()
	if st := m.Nodes()[0]; st.Breaker != BreakerQuarantined {
		t.Errorf("quarantine released after %v, hold is %v", time.Minute, time.Hour)
	}
}

// TestBreakerDisabled: FailureThreshold < 0 switches the layer off —
// every node stays pollable no matter how it fails.
func TestBreakerDisabled(t *testing.T) {
	clk := &testClock{}
	var dials atomic.Int32
	flaky := &flakyBMC{}
	m := NewManager(func(addr string) (BMC, error) {
		dials.Add(1)
		return flaky, nil
	})
	defer m.Close()
	m.Clock = clk.now
	m.RetryBaseDelay = time.Nanosecond
	m.RetryMaxDelay = 2 * time.Nanosecond
	m.Breaker = BreakerConfig{FailureThreshold: -1}
	if err := m.AddNode("n", "x"); err != nil {
		t.Fatal(err)
	}
	flaky.setFail(true)
	for i := 0; i < 10; i++ {
		clk.advance(time.Microsecond)
		m.Poll()
	}
	st := m.Nodes()[0]
	if st.Breaker != BreakerClosed || st.BreakerOpens != 0 {
		t.Errorf("disabled breaker reached %q (opens %d)", st.Breaker, st.BreakerOpens)
	}
	if dials.Load() < 10 {
		t.Errorf("disabled breaker stopped dialing: %d dials", dials.Load())
	}
}

// TestBusySkipStarvationVisible (satellite): busy-skips used to vanish
// silently; now they count in NodeStatus and a skip streak says so in
// the trace.
func TestBusySkipStarvationVisible(t *testing.T) {
	m := NewManager(func(addr string) (BMC, error) { return &flakyBMC{}, nil })
	defer m.Close()
	tr := telemetry.NewTrace(256)
	m.SetTelemetry(telemetry.NewRegistry(), tr)
	if err := m.AddNode("n", "x"); err != nil {
		t.Fatal(err)
	}
	n, err := m.node("n")
	if err != nil {
		t.Fatal(err)
	}
	if !n.tryAcquire() {
		t.Fatal("token unexpectedly held")
	}
	for i := 0; i < DefaultStarveSkips; i++ {
		m.Poll()
	}
	n.release()

	st := m.Nodes()[0]
	if st.BusySkips != DefaultStarveSkips {
		t.Errorf("BusySkips = %d, want %d", st.BusySkips, DefaultStarveSkips)
	}
	var starves int
	for _, ev := range tr.Tail(64, "n") {
		if ev.Kind == telemetry.EvBusyStarve {
			starves++
			if ev.N != int64(DefaultStarveSkips) {
				t.Errorf("starve event N = %d, want %d", ev.N, DefaultStarveSkips)
			}
		}
	}
	if starves != 1 {
		t.Errorf("EvBusyStarve emitted %d times, want once at the streak threshold", starves)
	}

	// A successful acquisition resets the streak, so the next stall
	// must again reach the threshold before re-alerting.
	m.Poll()
	m.mu.Lock()
	streak := n.consecSkips
	m.mu.Unlock()
	if streak != 0 {
		t.Errorf("consecSkips = %d after an unstarved round, want 0", streak)
	}
}

// TestP2Quantile: the streaming estimator must land near the true
// percentile on a uniform stream — and, being a pure function of the
// observation sequence, repeat itself exactly.
func TestP2Quantile(t *testing.T) {
	feed := func() float64 {
		var e p2Quantile
		// Deterministic pseudo-shuffle of 1..10000 via a full-cycle LCG.
		x := 1
		for i := 0; i < 10000; i++ {
			x = (x*5 + 3) % 10007
			e.Observe(float64(x%10000 + 1))
		}
		return e.Value()
	}
	v := feed()
	if v < 9700 || v > 10050 {
		t.Errorf("p99 over uniform 1..10000 = %v, want ≈9900", v)
	}
	if v2 := feed(); v2 != v {
		t.Errorf("estimator not deterministic: %v vs %v", v, v2)
	}

	// Below five samples the exact order statistic is returned.
	var e p2Quantile
	for _, s := range []float64{30, 10, 20} {
		e.Observe(s)
	}
	if got := e.Value(); got != 30 {
		t.Errorf("small-sample p99 = %v, want the max (30)", got)
	}
}
