package dcm

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nodecap/internal/faults"
	"nodecap/internal/ipmi"
)

// bmcStub is a minimal ipmi.NodeControl backing real IPMI servers in
// fault tests.
type bmcStub struct {
	mu    sync.Mutex
	power float64
	limit ipmi.PowerLimit
}

func (s *bmcStub) DeviceInfo() ipmi.DeviceInfo { return ipmi.DeviceInfo{DeviceID: 1} }
func (s *bmcStub) PowerReading() ipmi.PowerReading {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ipmi.PowerReading{CurrentWatts: s.power, AverageWatts: s.power}
}
func (s *bmcStub) SetPowerLimit(l ipmi.PowerLimit) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.limit = l
	return nil
}
func (s *bmcStub) PowerLimit() ipmi.PowerLimit {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.limit
}
func (s *bmcStub) PStateInfo() ipmi.PStateInfo {
	return ipmi.PStateInfo{Index: 0, Count: 16, FreqMHz: 2700}
}
func (s *bmcStub) GatingLevel() int { return 0 }
func (s *bmcStub) Capabilities() ipmi.Capabilities {
	return ipmi.Capabilities{MinCapWatts: 120, MaxCapWatts: 180}
}
func (s *bmcStub) Health() ipmi.Health { return ipmi.Health{} }

// faultFleet brings up n real IPMI servers, each dialed through its
// own faults.Transport, and a manager with tight timeouts and backoff
// suitable for tests.
func faultFleet(t *testing.T, n int) (*Manager, []string, []*faults.Transport) {
	t.Helper()
	addrs := make([]string, n)
	transports := make([]*faults.Transport, n)
	byAddr := make(map[string]*faults.Transport, n)
	for i := 0; i < n; i++ {
		srv := ipmi.NewServer(&bmcStub{power: 140 + float64(i)})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[i] = addr
		transports[i] = faults.New(faults.Profile{Seed: int64(i) + 1})
		byAddr[addr] = transports[i]
	}
	m := NewManager(func(addr string) (BMC, error) {
		tr, ok := byAddr[addr]
		if !ok {
			return nil, fmt.Errorf("no transport for %s", addr)
		}
		conn, err := tr.Dial("tcp", addr, 500*time.Millisecond)
		if err != nil {
			return nil, err
		}
		c := ipmi.NewClientConn(conn)
		c.SetRequestTimeout(150 * time.Millisecond)
		return c, nil
	})
	m.RetryBaseDelay = 10 * time.Millisecond
	m.RetryMaxDelay = 50 * time.Millisecond
	t.Cleanup(m.Close)
	return m, addrs, transports
}

// TestPollSurvivesHungBMC is the acceptance scenario: a BMC that
// accepts TCP but never responds must not wedge the sweep; Poll
// completes within the request timeout, only that node goes
// unreachable, and once the fault clears a later poll redials it.
func TestPollSurvivesHungBMC(t *testing.T) {
	m, addrs, transports := faultFleet(t, 2)
	for i, addr := range addrs {
		if err := m.AddNode(fmt.Sprintf("n%d", i), addr); err != nil {
			t.Fatal(err)
		}
	}

	// Hang n0: its writes are blackholed, so requests run into the
	// client's read deadline.
	transports[0].SetProfile(faults.Profile{DropWrites: true})

	start := time.Now()
	m.Poll()
	elapsed := time.Since(start)
	// One exchange deadline is 150ms; the sweep must be bounded by it
	// (plus slack), not hang forever.
	if elapsed > 2*time.Second {
		t.Fatalf("Poll took %v against a hung BMC", elapsed)
	}

	ns := m.Nodes()
	if ns[0].Reachable {
		t.Error("hung node still marked reachable")
	}
	if ns[0].ConsecFailures == 0 || ns[0].LastError == "" {
		t.Errorf("hung node health not recorded: %+v", ns[0])
	}
	if !ns[1].Reachable {
		t.Error("healthy node marked unreachable by neighbour's hang")
	}

	// Fault clears; the node must come back via redial within the
	// backoff bound.
	transports[0].SetProfile(faults.Profile{})
	deadline := time.Now().Add(5 * time.Second)
	for {
		m.Poll()
		if st := m.Nodes()[0]; st.Reachable {
			if st.Reconnects == 0 {
				t.Errorf("recovered without a recorded reconnect: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("hung node never recovered after fault cleared")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBackoffGatesRedial: after a failure, polls inside the backoff
// window must not redial; the gate is capped by RetryMaxDelay.
func TestBackoffGatesRedial(t *testing.T) {
	var dials atomic.Int32
	failing := &flakyBMC{fail: true}
	m := NewManager(func(addr string) (BMC, error) {
		dials.Add(1)
		return failing, nil
	})
	defer m.Close()
	m.RetryBaseDelay = time.Hour
	m.RetryMaxDelay = 2 * time.Hour

	failing.setFail(false)
	if err := m.AddNode("n", "x"); err != nil {
		t.Fatal(err)
	}
	failing.setFail(true)
	m.Poll() // fails, drops conn, arms backoff
	if got := m.Nodes()[0]; got.Reachable || got.NextRetryAt.IsZero() {
		t.Fatalf("failure not recorded: %+v", got)
	}
	before := dials.Load()
	for i := 0; i < 5; i++ {
		m.Poll()
	}
	if dials.Load() != before {
		t.Errorf("poll redialed %d times inside the backoff window", dials.Load()-before)
	}

	// The computed delay stays within [max/2, max] once failures pile
	// up, so recovery latency is bounded.
	m.mu.Lock()
	for _, f := range []int{1, 3, 10, 30} {
		d := m.backoff(f)
		if d > m.RetryMaxDelay {
			m.mu.Unlock()
			t.Fatalf("backoff(%d) = %v exceeds cap %v", f, d, m.RetryMaxDelay)
		}
	}
	d := m.backoff(30)
	m.mu.Unlock()
	if d < m.RetryMaxDelay/2 {
		t.Errorf("backoff(30) = %v, want >= half the cap", d)
	}
}

// TestSetNodeCapRedialsImmediately: an explicit operator action
// ignores the poll loop's backoff gate.
func TestSetNodeCapRedialsImmediately(t *testing.T) {
	flaky := &flakyBMC{}
	m := NewManager(func(addr string) (BMC, error) {
		if flaky.failing() {
			return nil, errors.New("down")
		}
		return flaky, nil
	})
	defer m.Close()
	m.RetryBaseDelay = time.Hour
	m.RetryMaxDelay = time.Hour

	if err := m.AddNode("n", "x"); err != nil {
		t.Fatal(err)
	}
	flaky.setFail(true)
	m.Poll() // sample fails, conn dropped, hour-long backoff armed
	if m.Nodes()[0].Reachable {
		t.Fatal("failure not recorded")
	}
	flaky.setFail(false)
	if err := m.SetNodeCap("n", 140); err != nil {
		t.Fatalf("SetNodeCap did not redial through the backoff gate: %v", err)
	}
	st := m.Nodes()[0]
	if !st.Reachable || st.Reconnects != 1 || st.CapWatts != 140 {
		t.Errorf("status after explicit redial = %+v", st)
	}
}

// flakyBMC fails all exchanges while fail is set.
type flakyBMC struct {
	mu   sync.Mutex
	fail bool
}

func (f *flakyBMC) setFail(v bool) { f.mu.Lock(); f.fail = v; f.mu.Unlock() }
func (f *flakyBMC) failing() bool  { f.mu.Lock(); defer f.mu.Unlock(); return f.fail }
func (f *flakyBMC) err() error {
	if f.failing() {
		return errors.New("injected failure")
	}
	return nil
}
func (f *flakyBMC) GetDeviceID() (ipmi.DeviceInfo, error) { return ipmi.DeviceInfo{}, f.err() }
func (f *flakyBMC) GetPowerReading() (ipmi.PowerReading, error) {
	return ipmi.PowerReading{CurrentWatts: 150, AverageWatts: 150}, f.err()
}
func (f *flakyBMC) SetPowerLimit(ipmi.PowerLimit) error { return f.err() }
func (f *flakyBMC) GetPowerLimit() (ipmi.PowerLimit, error) {
	return ipmi.PowerLimit{}, f.err()
}
func (f *flakyBMC) GetPStateInfo() (ipmi.PStateInfo, error) {
	return ipmi.PStateInfo{FreqMHz: 2700}, f.err()
}
func (f *flakyBMC) GetGatingLevel() (int, error) { return 0, f.err() }
func (f *flakyBMC) GetCapabilities() (ipmi.Capabilities, error) {
	return ipmi.Capabilities{MinCapWatts: 120, MaxCapWatts: 180}, f.err()
}
func (f *flakyBMC) GetHealth() (ipmi.Health, error) { return ipmi.Health{}, f.err() }
func (f *flakyBMC) Close() error                    { return nil }

// guardedBMC flags any use after Close — the use-after-close the
// per-node ownership token must prevent.
type guardedBMC struct {
	mu     sync.Mutex
	closed bool
	misuse *atomic.Bool
}

func (g *guardedBMC) check() {
	g.mu.Lock()
	if g.closed {
		g.misuse.Store(true)
	}
	g.mu.Unlock()
}
func (g *guardedBMC) GetDeviceID() (ipmi.DeviceInfo, error) {
	g.check()
	return ipmi.DeviceInfo{}, nil
}
func (g *guardedBMC) GetPowerReading() (ipmi.PowerReading, error) {
	g.check()
	return ipmi.PowerReading{CurrentWatts: 150, AverageWatts: 150}, nil
}
func (g *guardedBMC) SetPowerLimit(ipmi.PowerLimit) error { g.check(); return nil }
func (g *guardedBMC) GetPowerLimit() (ipmi.PowerLimit, error) {
	g.check()
	return ipmi.PowerLimit{}, nil
}
func (g *guardedBMC) GetPStateInfo() (ipmi.PStateInfo, error) {
	g.check()
	return ipmi.PStateInfo{FreqMHz: 2700}, nil
}
func (g *guardedBMC) GetGatingLevel() (int, error) { g.check(); return 0, nil }
func (g *guardedBMC) GetCapabilities() (ipmi.Capabilities, error) {
	g.check()
	return ipmi.Capabilities{MinCapWatts: 120, MaxCapWatts: 180}, nil
}
func (g *guardedBMC) GetHealth() (ipmi.Health, error) { g.check(); return ipmi.Health{}, nil }
func (g *guardedBMC) Close() error {
	g.mu.Lock()
	g.closed = true
	g.mu.Unlock()
	return nil
}

// TestConcurrentPollSetcapRemove hammers the three per-node operations
// concurrently (run with -race). The ownership token must prevent any
// BMC call from landing after RemoveNode's Close.
func TestConcurrentPollSetcapRemove(t *testing.T) {
	var misuse atomic.Bool
	m := NewManager(func(addr string) (BMC, error) {
		return &guardedBMC{misuse: &misuse}, nil
	})
	defer m.Close()
	m.RetryBaseDelay = time.Millisecond
	m.RetryMaxDelay = 2 * time.Millisecond

	const node = "n0"
	if err := m.AddNode(node, "x"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m.Poll()
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				err := m.SetNodeCap(node, 140)
				if err != nil && !strings.Contains(err.Error(), "unknown node") {
					t.Errorf("SetNodeCap: %v", err)
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				m.RemoveNode(node)
				m.AddNode(node, "x")
			}
		}()
	}
	wg.Wait()
	if misuse.Load() {
		t.Fatal("a BMC was used after RemoveNode closed it")
	}
}

// TestServerCloseWithClientMidConnection: an idle dcmctl connection
// must not make Close block on its handler.
func TestServerCloseWithClientMidConnection(t *testing.T) {
	m := NewManager(func(addr string) (BMC, error) { return &flakyBMC{}, nil })
	defer m.Close()
	s := NewServer(m)
	s.IdleTimeout = time.Hour // deadline alone must not be what unblocks Close
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Let the server accept and park in its read loop.
	time.Sleep(20 * time.Millisecond)

	done := make(chan struct{})
	go func() {
		s.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Server.Close blocked on an idle client connection")
	}
}

// TestServerIdleTimeoutReapsStalledClient: with a short idle timeout,
// the handler goroutine ends on its own.
func TestServerIdleTimeoutReapsStalledClient(t *testing.T) {
	m := NewManager(func(addr string) (BMC, error) { return &flakyBMC{}, nil })
	defer m.Close()
	s := NewServer(m)
	s.IdleTimeout = 50 * time.Millisecond
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The server should hang up once the idle deadline passes; the
	// client observes EOF/reset on its next read.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("stalled connection was not reaped")
	} else if nerr, ok := err.(net.Error); ok && nerr.Timeout() {
		t.Fatal("server kept the stalled connection past its idle timeout")
	}
}

// TestBudgetEmptyGroupRejected: the control plane must refuse a
// budget over zero nodes instead of reporting success.
func TestBudgetEmptyGroupRejected(t *testing.T) {
	m := NewManager(func(addr string) (BMC, error) { return &flakyBMC{}, nil })
	defer m.Close()
	s := NewServer(m)
	if r := s.Handle(Request{Op: "budget", Budget: 300}); r.OK || r.Error == "" {
		t.Errorf("budget with empty group = %+v, want rejection", r)
	}
	if r := s.Handle(Request{Op: "budget", Budget: 300, Group: []string{}}); r.OK {
		t.Errorf("budget with zero-length group = %+v, want rejection", r)
	}
}
