// High availability for the DCM control plane: a primary/standby
// manager pair shares a lease (store.LeaseFile) whose epoch is the
// fencing token stamped onto every cap push. Lease grants serialize
// under a file lock, so every epoch is unique — but the lease alone
// still cannot prevent split-brain: an ex-primary partitioned from the
// lease file keeps actuating on an epoch it no longer holds. So safety
// rests on the nodes: each BMC remembers the highest epoch that ever
// actuated it and rejects older ones (ipmi.CCStaleEpoch). A deposed
// primary's pushes are therefore refused by the plant itself, no
// matter what the deposed process believes about its lease.
//
// HANode is deliberately goroutine-free: the daemon (or the chaos
// harness) calls Tick on its own cadence, so failover timing is a pure
// function of the injected lease clock and replays bit-identically.
package dcm

import (
	"errors"
	"sort"
	"time"

	"nodecap/internal/dcm/store"
	"nodecap/internal/telemetry"
)

// Role is a manager's place in an HA pair.
type Role string

const (
	// RoleSolo is a manager outside any HA pair (the default). Its
	// pushes carry whatever epoch SetFencing installed — zero, for a
	// plain deployment, which every node admits.
	RoleSolo Role = "solo"
	// RolePrimary holds the lease and actuates the fleet.
	RolePrimary Role = "primary"
	// RoleStandby replicates the primary's journal and refuses every
	// mutation until promoted.
	RoleStandby Role = "standby"
)

// ErrNotLeader rejects a mutation sent to a standby manager.
var ErrNotLeader = errors.New("dcm: not the leader (standby refuses mutations)")

// SetFencing installs the manager's HA role and fencing epoch, and
// clears any previous fenced verdict. Every subsequent cap push is
// stamped with this epoch.
func (m *Manager) SetFencing(role Role, epoch uint64) {
	m.mu.Lock()
	m.role = role
	m.epoch = epoch
	m.fenced = false
	m.mu.Unlock()
}

// Role reports the manager's HA role.
func (m *Manager) Role() Role {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.role == "" {
		return RoleSolo
	}
	return m.role
}

// Epoch reports the fencing epoch stamped onto pushes.
func (m *Manager) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Fenced reports whether any push since the last SetFencing was
// rejected by a node for carrying a stale epoch — positive proof a
// newer leader has actuated the fleet.
func (m *Manager) Fenced() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fenced
}

// Store exposes the open state store (nil without OpenStateDir) so a
// daemon can serve its replication feed to a standby.
func (m *Manager) Store() *store.Store {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.store
}

// noteFenced records a stale-epoch rejection. The connection stays up
// — the exchange completed, only the authority was refused — so no
// dropConn/backoff; the manager simply must stop believing it leads.
func (m *Manager) noteFenced(n *managedNode, staleEpoch uint64, err error) {
	m.mu.Lock()
	m.fenced = true
	n.status.LastError = err.Error()
	m.tel.fencedPushes.Inc()
	m.tel.trace.Append(telemetry.Event{
		Node: n.name, Kind: telemetry.EvFenced, N: int64(staleEpoch), Err: err.Error(),
	})
	m.mu.Unlock()
}

// noteLeaderChange traces a leadership transition.
func (m *Manager) noteLeaderChange(transition string, epoch uint64) {
	m.mu.Lock()
	m.tel.leaderChanges.Inc()
	m.tel.trace.Append(telemetry.Event{
		Kind: telemetry.EvLeaderChange, N: int64(epoch), Err: transition,
	})
	m.mu.Unlock()
}

// AnnounceEpoch re-pushes every node's desired policy under the
// manager's current epoch. The values are unchanged — the plants see
// the same caps — but each push advances the node's fencing watermark,
// so anything still in flight from a deposed leader is rejected from
// then on. Run on promotion, before the first rebalance. Nodes with no
// desired policy are skipped; their watermark advances on their first
// real push. Push failures are joined and returned; reconciliation
// retries them.
func (m *Manager) AnnounceEpoch() error {
	m.mu.Lock()
	caps := make(map[string]float64, len(m.nodes))
	names := make([]string, 0, len(m.nodes))
	for name, n := range m.nodes {
		if !n.haveDesired {
			continue
		}
		names = append(names, name)
		if n.desired.Enabled {
			caps[name] = n.desired.CapWatts
		}
	}
	m.mu.Unlock()
	sort.Strings(names) // deterministic fence order
	var errs []error
	for _, name := range names {
		if err := m.SetNodeCap(name, caps[name]); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// HANode drives one member of an HA pair through the lease state
// machine.
type HANode struct {
	// ID identifies this member in the lease file.
	ID string
	// Lease is the shared leadership lease (in the replicated state
	// dir's filesystem, or any path both members can reach).
	Lease *store.LeaseFile
	// TTL is the term granted on every acquire and renewal.
	TTL time.Duration
	// Mgr is the manager this member fences and promotes.
	Mgr *Manager
	// OnPromote, when set, runs after a successful promotion — the
	// fencing epoch installed and announced — so the daemon can re-arm
	// polling and auto-balance from the restored state.
	OnPromote func(epoch uint64)
}

// Start performs the initial lease attempt: the member comes up
// primary when the lease is free, expired, or last held by it, and
// standby otherwise.
func (h *HANode) Start() (Role, error) {
	l, ok, err := h.Lease.Acquire(h.ID, h.TTL)
	if err != nil {
		return "", err
	}
	if !ok {
		h.Mgr.SetFencing(RoleStandby, l.Epoch)
		return RoleStandby, nil
	}
	return RolePrimary, h.promote(l)
}

// Tick advances the member one step: a primary renews its lease (and
// steps down if it finds itself deposed); a standby attempts takeover.
// Reports whether leadership changed. Call on the daemon's heartbeat —
// comfortably inside the TTL for a primary, or takeover races the
// clock.
func (h *HANode) Tick() (changed bool, err error) {
	switch h.Mgr.Role() {
	case RolePrimary:
		return h.renew()
	case RoleStandby:
		return h.tryPromote()
	}
	return false, nil
}

func (h *HANode) renew() (bool, error) {
	l, ok, err := h.Lease.Acquire(h.ID, h.TTL)
	if err != nil {
		return false, err
	}
	if !ok {
		// Another member holds the lease: we were deposed while our
		// back was turned. Stop actuating — its announce round has
		// already fenced us at the nodes.
		h.Mgr.SetFencing(RoleStandby, l.Epoch)
		h.Mgr.noteLeaderChange("deposed", l.Epoch)
		return true, nil
	}
	if l.Epoch != h.Mgr.Epoch() {
		// Our own lease lapsed and the re-acquire bumped the epoch:
		// someone may have led in the gap, so re-fence and re-announce
		// as if freshly promoted.
		return true, h.promote(l)
	}
	return false, nil
}

func (h *HANode) tryPromote() (bool, error) {
	l, ok, err := h.Lease.Acquire(h.ID, h.TTL)
	if err != nil || !ok {
		return false, err
	}
	return true, h.promote(l)
}

// promote fences the manager at the lease's epoch, announces it to
// the fleet, and hands control to the daemon's OnPromote hook.
func (h *HANode) promote(l store.Lease) error {
	h.Mgr.SetFencing(RolePrimary, l.Epoch)
	h.Mgr.noteLeaderChange("promoted", l.Epoch)
	err := h.Mgr.AnnounceEpoch()
	if h.OnPromote != nil {
		h.OnPromote(l.Epoch)
	}
	return err
}

// StepDown releases the lease and demotes the manager so the peer can
// take over without waiting out the TTL (graceful shutdown).
func (h *HANode) StepDown() error {
	err := h.Lease.Release(h.ID)
	if h.Mgr.Role() == RolePrimary {
		epoch := h.Mgr.Epoch()
		h.Mgr.SetFencing(RoleStandby, epoch)
		h.Mgr.noteLeaderChange("stepped-down", epoch)
	}
	return err
}
