package dcm

import (
	"strings"
	"testing"
	"time"

	"nodecap/internal/ipmi"
)

func readLimit(f *fakeBMC) ipmi.PowerLimit {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.limit
}

func status(t *testing.T, m *Manager, name string) NodeStatus {
	t.Helper()
	for _, s := range m.Nodes() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("node %q not in manager", name)
	return NodeStatus{}
}

// TestCrashRecoveryReconciles is the PR's acceptance scenario: a
// manager with capped nodes dies without any shutdown, a fresh manager
// restarts from the state dir, and one poll later every node's
// reported policy equals the desired policy — including a BMC that
// rebooted (lost its policy) while the manager was down.
func TestCrashRecoveryReconciles(t *testing.T) {
	dir := t.TempDir()
	bmcs := map[string]*fakeBMC{
		"a": newFakeBMC(150), "b": newFakeBMC(160), "c": newFakeBMC(130),
	}
	m1 := fleet(bmcs)
	if err := m1.OpenStateDir(dir); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"a", "b", "c"} {
		if err := m1.AddNode(n, n); err != nil {
			t.Fatal(err)
		}
	}
	if err := m1.SetNodeCap("a", 140); err != nil {
		t.Fatal(err)
	}
	if err := m1.SetNodeCap("b", 150); err != nil {
		t.Fatal(err)
	}
	if err := m1.SetNodeCap("c", 0); err != nil { // uncapped IS the intent
		t.Fatal(err)
	}
	// Crash: m1 is abandoned without Close. The journal was fsync'd on
	// every Apply, so the desired state is already durable.

	// While the manager is down: b's BMC reboots and loses its policy;
	// something rogue caps c.
	bmcs["b"].mu.Lock()
	bmcs["b"].limit = ipmi.PowerLimit{}
	bmcs["b"].mu.Unlock()
	bmcs["c"].mu.Lock()
	bmcs["c"].limit = ipmi.PowerLimit{Enabled: true, CapWatts: 155}
	bmcs["c"].mu.Unlock()

	m2 := fleet(bmcs)
	if err := m2.OpenStateDir(dir); err != nil {
		t.Fatal(err)
	}
	defer m2.Close()

	// Restored but not yet polled: desired policy present, node marked
	// unreachable with an explanatory error.
	st := status(t, m2, "a")
	if st.CapWatts != 140 || !st.CapEnabled || st.Reachable {
		t.Fatalf("restored status = %+v", st)
	}
	if !strings.Contains(st.LastError, "restored") {
		t.Errorf("restored LastError = %q", st.LastError)
	}
	if st.MinCapWatts != 123 || st.MaxCapWatts != 180 {
		t.Errorf("cap range not restored: %+v", st)
	}

	m2.Poll()

	for name, want := range map[string]ipmi.PowerLimit{
		"a": {Enabled: true, CapWatts: 140},
		"b": {Enabled: true, CapWatts: 150},
		"c": {Enabled: false, CapWatts: 0},
	} {
		if got := readLimit(bmcs[name]); got != want {
			t.Errorf("node %s reported policy = %+v, want %+v", name, got, want)
		}
		s := status(t, m2, name)
		if !s.Reachable {
			t.Errorf("node %s unreachable after poll: %s", name, s.LastError)
		}
		if s.ReportedCapWatts != want.CapWatts || s.ReportedCapEnabled != want.Enabled {
			t.Errorf("node %s reported status = %+v, want %+v", name, s, want)
		}
	}

	// a never drifted; b (rebooted) and c (rogue cap) each drifted once
	// and were reconciled once.
	if s := status(t, m2, "a"); s.Drifts != 0 || s.Reconciles != 0 {
		t.Errorf("a drift telemetry = %d/%d, want 0/0", s.Drifts, s.Reconciles)
	}
	for _, name := range []string{"b", "c"} {
		if s := status(t, m2, name); s.Drifts != 1 || s.Reconciles != 1 {
			t.Errorf("%s drift telemetry = %d/%d, want 1/1", name, s.Drifts, s.Reconciles)
		}
	}

	// Steady state: a second poll finds nothing to reconcile.
	m2.Poll()
	for _, name := range []string{"b", "c"} {
		if s := status(t, m2, name); s.Drifts != 1 || s.Reconciles != 1 {
			t.Errorf("%s reconciled again in steady state: %d/%d", name, s.Drifts, s.Reconciles)
		}
	}
}

// TestDesiredStateSurvivesFailedPush: the intent is journaled before
// the push, so a cap set while the node is down still lands after a
// restart.
func TestDesiredStateSurvivesFailedPush(t *testing.T) {
	dir := t.TempDir()
	b := newFakeBMC(150)
	m1 := fleet(map[string]*fakeBMC{"n": b})
	if err := m1.OpenStateDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := m1.AddNode("n", "n"); err != nil {
		t.Fatal(err)
	}
	b.mu.Lock()
	b.fail = true
	b.mu.Unlock()
	if err := m1.SetNodeCap("n", 135); err == nil {
		t.Fatal("push to a failing BMC succeeded")
	}
	// Crash without Close; node heals while the manager is down.
	b.mu.Lock()
	b.fail = false
	b.closed = false
	b.mu.Unlock()

	m2 := fleet(map[string]*fakeBMC{"n": b})
	if err := m2.OpenStateDir(dir); err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	m2.Poll()
	if got := readLimit(b); !got.Enabled || got.CapWatts != 135 {
		t.Errorf("reconciled limit = %+v, want the failed push's 135 W", got)
	}
}

// TestRemovedNodeStaysRemoved: removal is durable too.
func TestRemovedNodeStaysRemoved(t *testing.T) {
	dir := t.TempDir()
	bmcs := map[string]*fakeBMC{"a": newFakeBMC(150), "b": newFakeBMC(140)}
	m1 := fleet(bmcs)
	if err := m1.OpenStateDir(dir); err != nil {
		t.Fatal(err)
	}
	m1.AddNode("a", "a")
	m1.AddNode("b", "b")
	if err := m1.RemoveNode("b"); err != nil {
		t.Fatal(err)
	}

	m2 := fleet(bmcs)
	if err := m2.OpenStateDir(dir); err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	ns := m2.Nodes()
	if len(ns) != 1 || ns[0].Name != "a" {
		t.Errorf("restored fleet = %+v, want only a", ns)
	}
}

func TestRestoredBudgetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	bmcs := map[string]*fakeBMC{"a": newFakeBMC(150), "b": newFakeBMC(140)}
	m1 := fleet(bmcs)
	if err := m1.OpenStateDir(dir); err != nil {
		t.Fatal(err)
	}
	m1.AddNode("a", "a")
	m1.AddNode("b", "b")
	m1.StartAutoBalance(310, []string{"b", "a"}, time.Hour)
	// Graceful shutdown keeps the journaled budget: a stopped daemon's
	// budget is still its intent.
	m1.Close()

	m2 := fleet(bmcs)
	if err := m2.OpenStateDir(dir); err != nil {
		t.Fatal(err)
	}
	watts, group, interval, ok := m2.RestoredBudget()
	if !ok || watts != 310 || interval != time.Hour {
		t.Fatalf("RestoredBudget = %v %v %v %v", watts, group, interval, ok)
	}
	if len(group) != 2 || group[0] != "a" || group[1] != "b" {
		t.Errorf("restored group = %v, want sorted [a b]", group)
	}

	// An explicit StopAutoBalance clears the budget durably.
	m2.StartAutoBalance(watts, group, interval)
	m2.StopAutoBalance()
	m2.Close()

	m3 := fleet(bmcs)
	if err := m3.OpenStateDir(dir); err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	if _, _, _, ok := m3.RestoredBudget(); ok {
		t.Error("budget survived an explicit StopAutoBalance")
	}
}

// TestCrashRestartReArmsJournaledBudget: a manager crashes (no
// graceful compaction) while StartAutoBalance is armed; the restarted
// manager must re-arm with the budget recovered from the journal —
// not whatever default its flags would dictate. This is the daemon's
// restart contract: RestoredBudget wins over configuration.
func TestCrashRestartReArmsJournaledBudget(t *testing.T) {
	dir := t.TempDir()
	bmcs := map[string]*fakeBMC{"a": newFakeBMC(150), "b": newFakeBMC(140)}
	m1 := fleet(bmcs)
	if err := m1.OpenStateDir(dir); err != nil {
		t.Fatal(err)
	}
	m1.AddNode("a", "a")
	m1.AddNode("b", "b")
	m1.StartAutoBalance(307, []string{"a", "b"}, time.Hour)
	m1.Crash() // journal left un-compacted, exactly as a power loss would

	m2 := fleet(bmcs)
	if err := m2.OpenStateDir(dir); err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	watts, group, interval, ok := m2.RestoredBudget()
	if !ok || watts != 307 || interval != time.Hour {
		t.Fatalf("RestoredBudget after crash = %v %v %v %v", watts, group, interval, ok)
	}
	if len(group) != 2 || group[0] != "a" || group[1] != "b" {
		t.Fatalf("restored group = %v", group)
	}

	// Re-arm with the journaled values (the flag default in this
	// hypothetical daemon would have been some other number entirely).
	const flagDefault = 9999.0
	if watts == flagDefault {
		t.Fatal("test is vacuous: journaled budget equals the flag default")
	}
	m2.StartAutoBalance(watts, group, interval)
	// The interval is an hour, so drive one division directly and
	// check the journaled budget — not the default — bounds the caps.
	allocs, err := m2.ApplyBudget(watts, group)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, a := range allocs {
		total += a.CapWatts
	}
	if total > 307+1e-6 {
		t.Errorf("re-armed caps total %.1f W, exceeding the journaled 307 W budget", total)
	}
	for _, f := range []*fakeBMC{bmcs["a"], bmcs["b"]} {
		if got := readLimit(f); !got.Enabled {
			t.Errorf("re-armed balance pushed no cap: %+v", got)
		}
	}
}

func TestOpenStateDirTwiceRejected(t *testing.T) {
	m := fleet(map[string]*fakeBMC{})
	defer m.Close()
	if err := m.OpenStateDir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if err := m.OpenStateDir(t.TempDir()); err == nil {
		t.Error("second OpenStateDir accepted")
	}
}

// TestReconcileCountsDrift exercises drift detection without any
// persistence: a BMC whose policy mutates behind the manager's back is
// driven back to desired state on the next poll.
func TestReconcileCountsDrift(t *testing.T) {
	b := newFakeBMC(150)
	m := fleet(map[string]*fakeBMC{"n": b})
	m.AddNode("n", "n")
	if err := m.SetNodeCap("n", 140); err != nil {
		t.Fatal(err)
	}
	m.Poll()
	if s := status(t, m, "n"); s.Drifts != 0 || s.Reconciles != 0 {
		t.Fatalf("drift flagged with no drift: %d/%d", s.Drifts, s.Reconciles)
	}

	b.mu.Lock()
	b.limit.CapWatts = 100 // rogue write behind the manager's back
	b.mu.Unlock()
	m.Poll()
	if got := readLimit(b); got.CapWatts != 140 {
		t.Errorf("limit after reconcile = %+v, want 140", got)
	}
	s := status(t, m, "n")
	if s.Drifts != 1 || s.Reconciles != 1 {
		t.Errorf("drift telemetry = %d/%d, want 1/1", s.Drifts, s.Reconciles)
	}
	if s.ReportedCapWatts != 140 {
		t.Errorf("ReportedCapWatts = %v", s.ReportedCapWatts)
	}
}

// TestPollSurfacesHealth: BMC-reported fail-safe and sensor-fault
// telemetry lands in NodeStatus.
func TestPollSurfacesHealth(t *testing.T) {
	b := newFakeBMC(150)
	b.health = ipmi.Health{FailSafe: true, SensorFaults: 42, InfeasibleCap: true}
	m := fleet(map[string]*fakeBMC{"n": b})
	m.AddNode("n", "n")
	m.Poll()
	s := status(t, m, "n")
	if !s.FailSafe || s.SensorFaults != 42 || !s.InfeasibleCap {
		t.Errorf("health not surfaced: %+v", s)
	}
}

// TestAllocateBudgetStaleNodeGetsMin: an unreachable node whose demand
// data has gone stale is granted only its platform minimum, freeing
// the budget for live nodes.
func TestAllocateBudgetStaleNodeGetsMin(t *testing.T) {
	a, b := newFakeBMC(170), newFakeBMC(170)
	m := fleet(map[string]*fakeBMC{"a": a, "b": b})
	m.StaleAfter = 10 * time.Millisecond
	m.AddNode("a", "a")
	m.AddNode("b", "b")
	m.Poll()

	// b dies; its last sample (170 W) is ghost demand.
	b.mu.Lock()
	b.fail = true
	b.mu.Unlock()
	m.Poll()

	// Still fresh: the dead node's demand counts for now.
	allocs, err := m.AllocateBudget(340, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	grants := map[string]float64{}
	for _, al := range allocs {
		grants[al.Name] = al.CapWatts
	}
	if grants["b"] <= 123+1e-6 {
		t.Errorf("fresh-failure grant for b = %.1f, want demand-weighted share", grants["b"])
	}

	time.Sleep(20 * time.Millisecond) // let b's demand go stale
	allocs, err = m.AllocateBudget(340, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	grants = map[string]float64{}
	for _, al := range allocs {
		grants[al.Name] = al.CapWatts
	}
	if grants["b"] != 123 {
		t.Errorf("stale node granted %.1f W, want platform minimum 123", grants["b"])
	}
	if grants["a"] <= grants["b"] {
		t.Errorf("live node granted %.1f W, no more than the stale one", grants["a"])
	}
}
