package dcm

import (
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"nodecap/internal/ipmi"
)

// TestAllocateBudgetUsesInjectedClock: regression for the allocator
// consulting time.Now() directly. The manager's clock is frozen
// decades in the past, so every timestamp it records (LastOKAt) is
// ancient by the real clock's reckoning. If AllocateBudget judged
// staleness against real time, the freshly-failed node would look
// stale and be pinned to its platform minimum; against the injected
// clock, zero time has passed and its demand still counts.
func TestAllocateBudgetUsesInjectedClock(t *testing.T) {
	b := newFakeBMC(170)
	m := fleet(map[string]*fakeBMC{"a": b})
	defer m.Close()
	frozen := time.Unix(1000, 0)
	m.Clock = func() time.Time { return frozen }
	m.StaleAfter = 50 * time.Millisecond
	if err := m.AddNode("a", "a"); err != nil {
		t.Fatal(err)
	}
	m.Poll()
	b.mu.Lock()
	b.fail = true
	b.mu.Unlock()
	m.Poll() // node is now unreachable, but not stale in injected time

	allocs, err := m.AllocateBudget(200, []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if allocs[0].CapWatts <= 123+1e-6 {
		t.Fatalf("grant pinned to the platform minimum (%.1f W): staleness was judged against the real clock, not the injected one", allocs[0].CapWatts)
	}
}

// TestAllocateBudgetAllStalePinnedToMinimums: advancing the injected
// clock past StaleAfter makes staleness deterministic — no wall
// sleeps. With every node stale, each is granted exactly its platform
// minimum, and the abundant leftover budget must NOT spill back into
// nodes that cannot be told about it.
func TestAllocateBudgetAllStalePinnedToMinimums(t *testing.T) {
	a, b := newFakeBMC(170), newFakeBMC(160)
	m := fleet(map[string]*fakeBMC{"a": a, "b": b})
	defer m.Close()
	var offsetNS int64 // advanced atomically; poll workers read the clock concurrently
	base := time.Unix(1000, 0)
	m.Clock = func() time.Time {
		return base.Add(time.Duration(atomic.LoadInt64(&offsetNS)))
	}
	m.StaleAfter = time.Minute
	m.AddNode("a", "a")
	m.AddNode("b", "b")
	m.Poll()
	for _, f := range []*fakeBMC{a, b} {
		f.mu.Lock()
		f.fail = true
		f.mu.Unlock()
	}
	m.Poll()

	atomic.StoreInt64(&offsetNS, int64(2*time.Minute))
	allocs, err := m.AllocateBudget(400, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	for _, al := range allocs {
		if al.CapWatts != 123 {
			t.Errorf("stale node %s granted %.1f W, want exactly the 123 W platform minimum", al.Name, al.CapWatts)
		}
	}
}

// TestWaterfillSpareBudgetOrderInvariant: regression for the
// spare-budget pass handing surplus out in caller argument order. Two
// identical nodes with budget for one full top-up: the surplus must go
// to the name-canonical first node regardless of how the caller
// ordered the demands.
func TestWaterfillSpareBudgetOrderInvariant(t *testing.T) {
	mk := func(names ...string) []demand {
		ds := make([]demand, len(names))
		for i, n := range names {
			ds[i] = demand{name: n, want: 100, min: 50, max: 200}
		}
		return ds
	}
	// Budget 350: minimums take 100, demand takes another 100, and the
	// spare 150 can raise only one node to its 200 W platform maximum.
	want, err := waterfill(350, mk("alpha", "beta"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := waterfill(350, mk("beta", "alpha"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("allocation depends on caller argument order:\n[alpha,beta] -> %+v\n[beta,alpha] -> %+v", want, got)
	}
	if want[0].Name != "alpha" || want[0].CapWatts != 200 || want[1].CapWatts != 150 {
		t.Errorf("spare budget not handed out in canonical name order: %+v", want)
	}
}

// TestWaterfillPermutationInvariant: the allocation is a pure function
// of the demand set — any permutation of a heterogeneous input
// (weighted, zero-want, and min==max nodes included) yields identical
// grants.
func TestWaterfillPermutationInvariant(t *testing.T) {
	base := []demand{
		{name: "a", want: 170, min: 120, max: 200},
		{name: "b", want: 95, min: 90, max: 180},
		{name: "c", want: 140, min: 100, max: 160, weight: 4},
		{name: "d", want: 0, min: 80, max: 150},
		{name: "e", want: 130, min: 110, max: 110}, // min==max: pinned
		{name: "f", want: 220, min: 100, max: 240},
	}
	want, err := waterfill(780, base)
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		p := append([]demand(nil), base...)
		rnd.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
		got, err := waterfill(780, p)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: permuted input changed the allocation:\nwant %+v\ngot  %+v", trial, want, got)
		}
	}
}

// TestWaterfillEdgeCases: the allocator's boundary behaviours, pinned
// exactly.
func TestWaterfillEdgeCases(t *testing.T) {
	t.Run("budget exactly at minimum sum", func(t *testing.T) {
		allocs, err := waterfill(200, []demand{
			{name: "a", want: 170, min: 100, max: 200},
			{name: "b", want: 150, min: 100, max: 200},
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, al := range allocs {
			if al.CapWatts != 100 {
				t.Errorf("%s granted %.1f W, want exactly the 100 W minimum", al.Name, al.CapWatts)
			}
		}
	})
	t.Run("min equals max pins the grant", func(t *testing.T) {
		allocs, err := waterfill(400, []demand{
			{name: "fixed", want: 170, min: 150, max: 150},
			{name: "free", want: 170, min: 100, max: 250},
		})
		if err != nil {
			t.Fatal(err)
		}
		grants := map[string]float64{}
		for _, al := range allocs {
			grants[al.Name] = al.CapWatts
		}
		if grants["fixed"] != 150 {
			t.Errorf("min==max node granted %.1f W, want exactly 150", grants["fixed"])
		}
		if grants["free"] <= 150 {
			t.Errorf("flexible node granted %.1f W; the surplus went nowhere", grants["free"])
		}
	})
	t.Run("zero-want node gets min while contested, max when spare", func(t *testing.T) {
		ds := []demand{
			{name: "z1", want: 0, min: 100, max: 150},
			{name: "z2", want: 120, min: 100, max: 150},
		}
		allocs, err := waterfill(220, ds) // contested: demand pass only
		if err != nil {
			t.Fatal(err)
		}
		if allocs[0].CapWatts != 100 || allocs[1].CapWatts != 120 {
			t.Errorf("contested grants = %+v, want z1 pinned to min", allocs)
		}
		allocs, err = waterfill(400, ds) // abundant: spare pass lifts both
		if err != nil {
			t.Fatal(err)
		}
		if allocs[0].CapWatts != 150 || allocs[1].CapWatts != 150 {
			t.Errorf("abundant grants = %+v, want both at platform max", allocs)
		}
	})
}

// TestWaterfillWeightBiasesContestedBudget: weights shape who wins
// contested watts demand×weight-proportionally, and stop mattering
// once everyone's demand is satisfied.
func TestWaterfillWeightBiasesContestedBudget(t *testing.T) {
	ds := []demand{
		{name: "batch", want: 100, min: 0, max: 200},
		{name: "serve", want: 100, min: 0, max: 200, weight: 4},
	}
	allocs, err := waterfill(100, ds)
	if err != nil {
		t.Fatal(err)
	}
	grants := map[string]float64{}
	for _, al := range allocs {
		grants[al.Name] = al.CapWatts
	}
	if grants["serve"] != 80 || grants["batch"] != 20 {
		t.Errorf("contested split = %+v, want 80/20 (demand×weight proportional)", grants)
	}
	// Abundant budget: both reach max; the weight changes nothing.
	allocs, err = waterfill(400, ds)
	if err != nil {
		t.Fatal(err)
	}
	if allocs[0].CapWatts != 200 || allocs[1].CapWatts != 200 {
		t.Errorf("abundant grants = %+v, want both at max regardless of weight", allocs)
	}
}

// TestAllocateBudgetTierBias: a high-tier node outbids an identical
// low-tier node for contested budget, end to end through the manager.
func TestAllocateBudgetTierBias(t *testing.T) {
	a, b := newFakeBMC(170), newFakeBMC(170)
	m := fleet(map[string]*fakeBMC{"a": a, "b": b})
	defer m.Close()
	m.AddNode("a", "a")
	m.AddNode("b", "b")
	if err := m.SetNodeTier("a", TierHigh); err != nil {
		t.Fatal(err)
	}
	m.Poll()

	allocs, err := m.AllocateBudget(300, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	grants := map[string]float64{}
	var sum float64
	for _, al := range allocs {
		grants[al.Name] = al.CapWatts
		sum += al.CapWatts
	}
	if grants["a"] <= grants["b"] {
		t.Errorf("high-tier node granted %.1f W, low-tier %.1f W; tier weight ignored", grants["a"], grants["b"])
	}
	if sum > 300+1e-6 {
		t.Errorf("budget exceeded: %.1f W", sum)
	}

	if err := m.SetNodeTier("ghost", TierHigh); err == nil {
		t.Error("SetNodeTier on unknown node accepted")
	}
	if err := m.SetNodeTier("a", "medium"); err == nil {
		t.Error("unknown tier accepted")
	}
	if _, err := ParseTier("medium"); err == nil {
		t.Error("ParseTier accepted an unknown tier")
	}
}

// TestAllocateBudgetWeightedOverrides: explicit weights override tier
// defaults, and non-positive weights are rejected.
func TestAllocateBudgetWeightedOverrides(t *testing.T) {
	a, b := newFakeBMC(170), newFakeBMC(170)
	m := fleet(map[string]*fakeBMC{"a": a, "b": b})
	defer m.Close()
	m.AddNode("a", "a")
	m.AddNode("b", "b")
	m.SetNodeTier("a", TierHigh)
	m.Poll()

	// b's explicit weight beats a's tier default of 4.
	allocs, err := m.AllocateBudgetWeighted(300, []string{"a", "b"}, map[string]float64{"a": 1, "b": 8})
	if err != nil {
		t.Fatal(err)
	}
	grants := map[string]float64{}
	for _, al := range allocs {
		grants[al.Name] = al.CapWatts
	}
	if grants["b"] <= grants["a"] {
		t.Errorf("explicit weight did not override the tier default: %+v", grants)
	}

	for _, w := range []float64{0, -1} {
		if _, err := m.AllocateBudgetWeighted(300, []string{"a", "b"}, map[string]float64{"a": w}); err == nil {
			t.Errorf("weight %v accepted", w)
		}
	}
}

// TestNodeTierFromCapabilities: a platform that advertises the high
// tier in its BMC capabilities is classified high at registration; an
// operator preset recorded before registration overrides it.
func TestNodeTierFromCapabilities(t *testing.T) {
	hi, lo := newFakeBMC(150), newFakeBMC(150)
	hi.capTier = ipmi.TierHigh
	m := fleet(map[string]*fakeBMC{"hi": hi, "lo": lo})
	defer m.Close()
	// Preset demotes hi before it registers, overriding the platform.
	if err := m.PresetNodeTier("hi", TierLow); err != nil {
		t.Fatal(err)
	}
	m.AddNode("hi", "hi")
	m.AddNode("lo", "lo")
	tiers := map[string]Tier{}
	for _, n := range m.Nodes() {
		tiers[n.Name] = n.Tier
	}
	if tiers["hi"] != TierLow {
		t.Errorf("preset did not override the platform-advertised tier: %q", tiers["hi"])
	}
	if tiers["lo"] != TierLow {
		t.Errorf("default tier = %q, want low", tiers["lo"])
	}
	// Preset on an already-registered node applies immediately.
	if err := m.PresetNodeTier("lo", TierHigh); err != nil {
		t.Fatal(err)
	}
	for _, n := range m.Nodes() {
		if n.Name == "lo" && n.Tier != TierHigh {
			t.Errorf("live preset not applied: %q", n.Tier)
		}
	}
	if err := m.PresetNodeTier("x", "medium"); err == nil {
		t.Error("PresetNodeTier accepted an unknown tier")
	}
}

// TestNodeTierAdvertisedAuto: without presets, the platform's
// advertised tier sticks.
func TestNodeTierAdvertisedAuto(t *testing.T) {
	hi := newFakeBMC(150)
	hi.capTier = ipmi.TierHigh
	m := fleet(map[string]*fakeBMC{"hi": hi})
	defer m.Close()
	m.AddNode("hi", "hi")
	if ns := m.Nodes(); ns[0].Tier != TierHigh {
		t.Errorf("advertised tier not honoured: %q", ns[0].Tier)
	}
}

// TestStartAutoBalanceRearmReplacesBudget: regression for re-arms
// being silently dropped while a loop was running. An operator who
// resizes the fleet budget must see the caps converge to the new
// total.
func TestStartAutoBalanceRearmReplacesBudget(t *testing.T) {
	a, b := newFakeBMC(170), newFakeBMC(130)
	m := fleet(map[string]*fakeBMC{"a": a, "b": b})
	defer m.Close()
	m.AddNode("a", "a")
	m.AddNode("b", "b")
	m.Poll()

	capSum := func() float64 {
		var sum float64
		for _, f := range []*fakeBMC{a, b} {
			f.mu.Lock()
			if f.limit.Enabled {
				sum += f.limit.CapWatts
			}
			f.mu.Unlock()
		}
		return sum
	}
	waitFor := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s (cap sum %.1f W)", what, capSum())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	m.StartAutoBalance(310, []string{"a", "b"}, 3*time.Millisecond)
	waitFor(func() bool {
		s := capSum()
		return s > 309 && s < 311
	}, "initial 310 W budget to be enforced")

	// Re-arm with a smaller budget while the first loop is running: the
	// new budget must take over (pre-fix, the re-arm was dropped and the
	// caps stayed at 310 W forever).
	m.StartAutoBalance(280, []string{"a", "b"}, 3*time.Millisecond)
	waitFor(func() bool {
		s := capSum()
		return s > 279 && s < 281
	}, "re-armed 280 W budget to take over")
	m.StopAutoBalance()
}

// TestServerHandleTierAndWeights: the control-plane settier op and
// per-request budget weights.
func TestServerHandleTierAndWeights(t *testing.T) {
	bmcs := map[string]*fakeBMC{"a": newFakeBMC(170), "b": newFakeBMC(170)}
	m := fleet(bmcs)
	defer m.Close()
	s := NewServer(m)
	for _, add := range []Request{{Op: "add", Name: "n", Addr: "a"}, {Op: "add", Name: "o", Addr: "b"}} {
		if r := s.Handle(add); !r.OK {
			t.Fatalf("add: %+v", r)
		}
	}
	if r := s.Handle(Request{Op: "poll"}); !r.OK {
		t.Fatalf("poll: %+v", r)
	}
	if r := s.Handle(Request{Op: "settier", Name: "n", Tier: "high"}); !r.OK {
		t.Fatalf("settier: %+v", r)
	}
	if r := s.Handle(Request{Op: "settier", Name: "n", Tier: "medium"}); r.OK {
		t.Error("settier accepted an unknown tier")
	}
	if r := s.Handle(Request{Op: "settier", Tier: "high"}); r.OK {
		t.Error("settier without a node name accepted")
	}
	r := s.Handle(Request{Op: "nodes"})
	if !r.OK || len(r.Nodes) != 2 {
		t.Fatalf("nodes: %+v", r)
	}
	for _, n := range r.Nodes {
		if n.Name == "n" && n.Tier != TierHigh {
			t.Errorf("settier not reflected in node status: %+v", n)
		}
	}

	// Per-request weights flip the contested split toward o, overriding
	// n's high tier.
	br := s.Handle(Request{Op: "budget", Budget: 300, Group: []string{"n", "o"}, Weights: map[string]float64{"n": 1, "o": 8}})
	if !br.OK || len(br.Allocs) != 2 {
		t.Fatalf("weighted budget: %+v", br)
	}
	grants := map[string]float64{}
	for _, al := range br.Allocs {
		grants[al.Name] = al.CapWatts
	}
	if grants["o"] <= grants["n"] {
		t.Errorf("request weights ignored by the budget op: %+v", grants)
	}
}
