package dcm

import (
	"nodecap/internal/telemetry"
)

// exchangeBuckets resolve per-exchange BMC latency, which runs
// microseconds in simulation and up to seconds against a sick BMC —
// far finer at the bottom than DefSecondsBuckets.
var exchangeBuckets = []float64{
	1e-6, 1e-5, 1e-4, 0.0005, 0.001, 0.005, 0.025, 0.1, 0.5, 2.5,
}

// managerTelemetry holds the manager's pre-resolved metric handles and
// trace sink. All fields are nil until SetTelemetry; every use is
// nil-safe, so an uninstrumented manager pays only a nil check.
type managerTelemetry struct {
	trace *telemetry.Trace

	capPushes       *telemetry.Counter
	capPushFailures *telemetry.Counter
	drifts          *telemetry.Counter
	reconciles      *telemetry.Counter
	backoffs        *telemetry.Counter
	redials         *telemetry.Counter
	polls           *telemetry.Counter
	budgetReallocs  *telemetry.Counter
	leaderChanges   *telemetry.Counter
	fencedPushes    *telemetry.Counter

	// Gray-failure defense (DESIGN.md §12).
	breakerOpens  *telemetry.Counter
	breakerCloses *telemetry.Counter
	quarantines   *telemetry.Counter
	sheds         *telemetry.Counter
	busySkips     *telemetry.Counter
	hedges        *telemetry.Counter
	lanePushes    *telemetry.Counter

	nodes     *telemetry.Gauge
	reachable *telemetry.Gauge

	pollSeconds     *telemetry.Histogram
	exchangeSeconds *telemetry.Histogram
}

// SetTelemetry wires a metrics registry and decision trace into the
// manager (either may be nil). Call before OpenStateDir so the store's
// journal metrics are wired too; a later OpenStateDir picks the sinks
// up regardless. Metric names are documented in DESIGN.md §9.
func (m *Manager) SetTelemetry(reg *telemetry.Registry, tr *telemetry.Trace) {
	m.mu.Lock()
	m.telReg = reg
	m.tel = managerTelemetry{
		trace:           tr,
		capPushes:       reg.Counter("dcm_cap_pushes_total"),
		capPushFailures: reg.Counter("dcm_cap_push_failures_total"),
		drifts:          reg.Counter("dcm_drifts_total"),
		reconciles:      reg.Counter("dcm_reconciles_total"),
		backoffs:        reg.Counter("dcm_backoffs_armed_total"),
		redials:         reg.Counter("dcm_redials_total"),
		polls:           reg.Counter("dcm_polls_total"),
		budgetReallocs:  reg.Counter("dcm_budget_reallocs_total"),
		leaderChanges:   reg.Counter("dcm_leader_changes_total"),
		fencedPushes:    reg.Counter("dcm_fenced_pushes_total"),
		breakerOpens:    reg.Counter("dcm_breaker_opens_total"),
		breakerCloses:   reg.Counter("dcm_breaker_closes_total"),
		quarantines:     reg.Counter("dcm_quarantines_total"),
		sheds:           reg.Counter("dcm_sheds_total"),
		busySkips:       reg.Counter("dcm_busy_skips_total"),
		hedges:          reg.Counter("dcm_hedged_pushes_total"),
		lanePushes:      reg.Counter("dcm_lane_pushes_total"),
		nodes:           reg.Gauge("dcm_nodes"),
		reachable:       reg.Gauge("dcm_nodes_reachable"),
		pollSeconds:     reg.Histogram("dcm_poll_seconds", telemetry.DefSecondsBuckets),
		exchangeSeconds: reg.Histogram("dcm_exchange_seconds", exchangeBuckets),
	}
	st := m.store
	m.mu.Unlock()
	if st != nil {
		st.SetTelemetry(reg, tr)
	}
}

// TraceEvents reads the manager's decision trace: the last `limit`
// events when since is 0, otherwise events with Seq >= since (the
// follow cursor), optionally filtered to one node. Nil without an
// attached trace.
func (m *Manager) TraceEvents(since uint64, node string, limit int) []telemetry.Event {
	m.mu.Lock()
	tr := m.tel.trace
	m.mu.Unlock()
	if tr == nil {
		return nil
	}
	if since == 0 {
		if limit <= 0 {
			limit = 256
		}
		return tr.Tail(limit, node)
	}
	return tr.Since(since, node, limit)
}

// updateFleetGauges refreshes the node-count gauges. Callers must NOT
// hold m.mu.
func (m *Manager) updateFleetGauges() {
	m.mu.Lock()
	total := len(m.nodes)
	var up int
	for _, n := range m.nodes {
		if n.status.Reachable {
			up++
		}
	}
	nodes, reach := m.tel.nodes, m.tel.reachable
	m.mu.Unlock()
	nodes.Set(float64(total))
	reach.Set(float64(up))
}
