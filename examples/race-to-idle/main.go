// Race-to-idle vs capped-slow: the energy question Section II-B of the
// paper raises — "in many constant-voltage cases it is more efficient
// to run briefly at peak speed and stay in a deep idle state ... than
// to run at a reduced clock rate", but "DVFS-driven race-to-idle may
// not always produce the best energy efficiency".
//
// The program fixes a processing deadline and compares, over the same
// window, (a) uncapped execution followed by deep idle and (b) capped
// execution sized to just meet the deadline, reporting the energy of
// each.
//
//	go run ./examples/race-to-idle
package main

import (
	"fmt"

	"nodecap/internal/machine"
	"nodecap/internal/workloads/stereo"
)

func main() {
	wcfg := stereo.DefaultConfig()
	wcfg.Sweeps = 1

	// Baseline: race at full speed, then idle out the window.
	race := machine.New(machine.Romley())
	resRace := race.RunWorkload(stereo.New(wcfg))
	deadline := resRace.ExecTime * 2 // the frame period: 2x slack

	idleTime := deadline - resRace.ExecTime
	race.AdvanceIdle(idleTime)
	raceEnergy := race.Meter().EnergyJoules()

	fmt.Printf("deadline (frame period): %v\n\n", deadline)
	fmt.Printf("race-to-idle: run %v at full speed, idle %v\n", resRace.ExecTime, idleTime)
	fmt.Printf("  busy power %.1f W, energy over window %.1f J\n\n",
		resRace.AvgPowerWatts, raceEnergy)

	// Capped alternatives: find caps whose run still meets the
	// deadline, and compare window energy (run energy + residual idle).
	fmt.Printf("%8s %12s %8s %14s %14s\n", "cap(W)", "run time", "meets?", "window E (J)", "vs race")
	for _, cap := range []float64{150, 145, 140, 135, 130} {
		m := machine.New(machine.Romley())
		m.SetPolicy(cap)
		res := m.RunWorkload(stereo.New(wcfg))
		meets := res.ExecTime <= deadline
		windowE := res.EnergyJoules
		if meets {
			// Idle out the rest of the window at idle power (capped idle draws the
			// same ~101 W floor).
			residual := deadline - res.ExecTime
			windowE += 101 * residual.Seconds()
		}
		mark := "no"
		if meets {
			mark = "yes"
		}
		delta := windowE - raceEnergy
		fmt.Printf("%8.0f %12v %8s %14.1f %+13.1f\n", cap, res.ExecTime, mark, windowE, delta)
	}

	fmt.Println("\nreading: with this platform's high idle floor, mild caps roughly tie")
	fmt.Println("race-to-idle (running slower saves about what the longer window costs),")
	fmt.Println("while deep caps lose: longer runtime, barely lower power — the paper's")
	fmt.Println("point that DVFS-driven race-to-idle is not automatically optimal, and")
	fmt.Println("its law of diminishing returns below ~140 W.")
}
