// Quickstart: build a simulated node, enforce a power cap, run a
// workload, and read the study's metrics — execution time, average
// node power, energy, average frequency, and the PAPI-style
// performance counters.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"nodecap/internal/counters"
	"nodecap/internal/machine"
	"nodecap/internal/workloads/stereo"
)

func main() {
	// A node modelled after the paper's platform: dual E5-2680, 16
	// P-states, 20 MB L3, BMC-enforced capping.
	cfg := machine.Romley()
	m := machine.New(cfg)

	// Measure with a PAPI-style event set, as the study did.
	es := counters.NewEventSet(m)
	if err := es.Add(counters.TOTINS, counters.TOTCYC, counters.L2TCM,
		counters.L3TCM, counters.TLBIM); err != nil {
		log.Fatal(err)
	}

	// Enforce a 140 W node cap (the paper's "acceptable range" edge:
	// <= 40% slowdown) and run stereo matching once. DefaultConfig is
	// sized for measurement sweeps (few annealing sweeps); for a
	// quality demo give the annealer enough sweeps to converge on a
	// smaller frame.
	m.SetPolicy(140)

	wcfg := stereo.DefaultConfig()
	wcfg.Width, wcfg.Height = 256, 256
	wcfg.Sweeps = 16
	w := stereo.New(wcfg)
	if err := es.Start(); err != nil {
		log.Fatal(err)
	}
	res := m.RunWorkload(w)
	if err := es.Stop(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload      : %s\n", res.Workload)
	fmt.Printf("power cap     : %.0f W\n", res.CapWatts)
	fmt.Printf("execution time: %v (virtual)\n", res.ExecTime)
	fmt.Printf("average power : %.1f W\n", res.AvgPowerWatts)
	fmt.Printf("energy        : %.1f J\n", res.EnergyJoules)
	fmt.Printf("avg frequency : %.0f MHz (P-state dithering)\n", res.AvgFreqMHz)
	fmt.Printf("disparity err : %.1f%% of pixels off by > 1 level\n", w.ErrorRate()*100)

	events, err := es.ReadAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncounters:")
	for _, e := range es.Events() {
		fmt.Printf("  %-13s %d\n", e, events[e])
	}
}
