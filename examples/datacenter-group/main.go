// Data-center scenario: the deployment Intel DCM was built for
// (Section II-A of the paper). Three simulated nodes with different
// loads run behind their BMCs' IPMI endpoints; a Data Center Manager
// monitors them and divides a rack-level power budget among them by
// demand, pushing per-node caps out-of-band while the nodes keep
// working.
//
//	go run ./examples/datacenter-group
package main

import (
	"fmt"
	"log"
	"time"

	"nodecap/internal/dcm"
	"nodecap/internal/ipmi"
	"nodecap/internal/machine"
	"nodecap/internal/nodeagent"
	"nodecap/internal/workloads/sar"
	"nodecap/internal/workloads/stereo"
)

func main() {
	// Bring up three nodes: a radar-processing node, a stereo-vision
	// node, and an idle spare. Each exposes its BMC over TCP.
	nodes := []struct {
		name string
		load func() machine.Workload
	}{
		{"radar-0", func() machine.Workload {
			cfg := sar.DefaultConfig()
			cfg.RSMIterations = 1
			return sar.New(cfg)
		}},
		{"vision-0", func() machine.Workload {
			cfg := stereo.DefaultConfig()
			cfg.Sweeps = 1
			return stereo.New(cfg)
		}},
		{"spare-0", nil},
	}

	mgr := dcm.NewManager(nil)
	defer mgr.Close()

	for i, n := range nodes {
		cfg := machine.Romley()
		cfg.Seed = uint64(i + 1)
		agent := nodeagent.New(cfg, nodeagent.Options{Workload: n.load})
		defer agent.Stop()
		srv := ipmi.NewServer(agent)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		if err := mgr.AddNode(n.name, addr); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("registered %-9s at %s\n", n.name, addr)
	}

	// Let the busy nodes ramp up, then take a few monitoring samples.
	fmt.Println("\nmonitoring (uncapped):")
	for i := 0; i < 3; i++ {
		time.Sleep(300 * time.Millisecond)
		mgr.Poll()
	}
	printStatus(mgr)

	// The rack's feed allows 395 W for these three nodes. Divide it by
	// demand: the spare gets its floor, the busy nodes split the rest.
	const budget = 395
	fmt.Printf("\napplying group budget: %d W across 3 nodes\n", budget)
	allocs, err := mgr.ApplyBudget(budget, []string{"radar-0", "vision-0", "spare-0"})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range allocs {
		fmt.Printf("  %-9s capped at %.1f W\n", a.Name, a.CapWatts)
	}

	// Watch the caps take effect out-of-band.
	fmt.Println("\nmonitoring (capped):")
	for i := 0; i < 4; i++ {
		time.Sleep(300 * time.Millisecond)
		mgr.Poll()
	}
	printStatus(mgr)

	var total float64
	for _, n := range mgr.Nodes() {
		total += n.Last.PowerWatts
	}
	fmt.Printf("\ngroup draw %.1f W against a %d W budget\n", total, budget)
}

func printStatus(mgr *dcm.Manager) {
	fmt.Printf("  %-9s %9s %9s %7s %5s\n", "node", "power(W)", "freq(MHz)", "pstate", "gate")
	for _, n := range mgr.Nodes() {
		fmt.Printf("  %-9s %9.1f %9d %7s %5d\n",
			n.Name, n.Last.PowerWatts, n.Last.FreqMHz,
			fmt.Sprintf("P%d", n.Last.PState), n.Last.GatingLevel)
	}
}
