// Fielded-platform scenario from the paper's motivation: a UAV's
// generator grants the payload computer a power budget, and SAR image
// formation has a soft real-time deadline that feeds battlefield
// decisions. Some slowdown is tolerable; missing the deadline is not.
//
// The program sweeps power caps over the SIRE/RSM workload, prints the
// time/power trade-off, and recommends the lowest cap whose
// time-to-solution still meets the deadline — the case-study
// methodology the paper's conclusion calls essential.
//
//	go run ./examples/fielded-uav
package main

import (
	"fmt"
	"log"

	"nodecap/internal/core"
	"nodecap/internal/machine"
	"nodecap/internal/workloads/sar"
)

func main() {
	// Mission parameters: the payload budget steps we can request from
	// the vehicle, and the image deadline expressed as tolerable
	// slowdown over the uncapped baseline (the paper's finding: up to
	// ~40% at moderate caps may be acceptable).
	const tolerableSlowdown = 1.40

	wcfg := sar.DefaultConfig()
	wcfg.RSMIterations = 2 // flight-mode quality setting

	exp := core.Experiment{
		NewWorkload: func() machine.Workload { return sar.New(wcfg) },
		Caps:        []float64{160, 150, 145, 140, 135, 130, 125},
		Trials:      2,
	}
	res, err := exp.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("UAV payload cap study: SIRE/RSM image formation")
	fmt.Printf("baseline: %.1f W, %v per image\n\n", res.Baseline.PowerWatts, res.Baseline.Time)
	fmt.Printf("%8s %10s %12s %10s %8s\n", "cap(W)", "power(W)", "time", "slowdown", "meets?")

	best := -1.0
	for _, r := range res.Capped {
		slow := r.TimeSeconds / res.Baseline.TimeSeconds
		ok := slow <= tolerableSlowdown
		mark := "no"
		if ok {
			mark = "yes"
			if best < 0 || r.CapWatts < best {
				best = r.CapWatts
			}
		}
		fmt.Printf("%8.0f %10.1f %12v %9.2fx %8s\n",
			r.CapWatts, r.PowerWatts, r.Time, slow, mark)
	}

	fmt.Println()
	if best > 0 {
		fmt.Printf("recommendation: request a %.0f W payload budget; image cadence "+
			"stays within %.0f%% of the uncapped rate.\n", best, (tolerableSlowdown-1)*100)
		fmt.Println("below that, execution time grows non-linearly (sub-DVFS gating engages)")
	} else {
		fmt.Println("no cap in the requested range meets the deadline; negotiate more power")
	}
}
