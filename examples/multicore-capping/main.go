// Multi-core power capping: the paper's first future-work item,
// explored. The same node power cap that barely touches a single busy
// core is a hard constraint for eight, because every core shares the
// socket budget: parallel speedup and the cap trade off against each
// other.
//
// The program runs the parallel SAR workload at several core counts,
// uncapped and under a node cap, and prints wall time, speedup, power,
// and the operating point the controller chose.
//
//	go run ./examples/multicore-capping
package main

import (
	"fmt"

	"nodecap/internal/multicore"
	"nodecap/internal/workloads/parallel"
	"nodecap/internal/workloads/sar"
)

func main() {
	wcfg := sar.DefaultConfig()
	wcfg.RSMIterations = 1
	wcfg.ImageSize = 64

	const capWatts = 230 // generous for 1 core, tight for 8

	fmt.Printf("parallel SIRE/RSM, node cap %d W where capped\n\n", capWatts)
	fmt.Printf("%5s %9s %12s %9s %10s %10s %8s\n",
		"cores", "cap", "wall time", "speedup", "power(W)", "freq(MHz)", "gating")

	var baseline map[int]float64
	baseline = map[int]float64{}

	for _, cores := range []int{1, 2, 4, 8} {
		for _, cap := range []float64{0, capWatts} {
			m := multicore.New(multicore.DefaultConfig(cores))
			m.SetPolicy(cap)
			res := m.Run(parallel.NewSAR(wcfg))

			label := "none"
			if cap > 0 {
				label = fmt.Sprintf("%.0f W", cap)
			}
			speedup := 0.0
			if cap == 0 {
				baseline[cores] = res.ExecTime.Seconds()
				if b, ok := baseline[1]; ok && res.ExecTime.Seconds() > 0 {
					speedup = b / res.ExecTime.Seconds()
				}
			} else if b, ok := baseline[1]; ok && res.ExecTime.Seconds() > 0 {
				speedup = b / res.ExecTime.Seconds()
			}
			fmt.Printf("%5d %9s %12v %8.2fx %10.1f %10.0f %8d\n",
				cores, label, res.ExecTime, speedup,
				res.AvgPowerWatts, res.AvgFreqMHz, m.GatingLevel())
		}
	}

	fmt.Println("\nreading: uncapped, more cores buy near-linear speedup at rising power.")
	fmt.Println("Capped, the controller trades frequency for width — and past the point")
	fmt.Println("where the cores' static power crowds out the clock budget, adding cores")
	fmt.Println("is a net loss: eight throttled+gated cores finish behind four. Under a")
	fmt.Println("power budget there is an optimal core count below the socket's maximum.")
}
