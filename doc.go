// Package nodecap reproduces "Evaluation of Core Performance when the
// Node is Power Capped using Intel Data Center Manager" (McCartney,
// Teller, Arunagiri; ICPP Workshops 2012) as a simulation study.
//
// The module builds every system the paper depends on — a
// cycle-approximate Sandy Bridge-class node (caches, TLBs, DRAM,
// P-states), a node power model, a BMC power-capping controller with a
// sub-DVFS gating ladder, an IPMI-style management protocol, a Data
// Center Manager, the two Army workloads (SIRE/RSM synthetic-aperture
// radar image formation and stereo matching by simulated annealing),
// and the Hennessy-Patterson memory-stride probe — and regenerates the
// paper's Tables I-II and Figures 1-4.
//
// Entry points:
//
//	cmd/powercap-bench   regenerate every table and figure
//	cmd/nodesimd         run a simulated node with a BMC endpoint
//	cmd/dcmd, cmd/dcmctl the management server and its CLI
//	examples/            runnable walkthroughs of the public surface
//
// The root-level benchmarks (bench_test.go) exercise one experiment
// per table and figure plus the ablations called out in DESIGN.md.
package nodecap
