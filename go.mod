module nodecap

go 1.22
