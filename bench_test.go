package nodecap

// One benchmark per table and figure of the paper's evaluation
// section, plus the ablation benches DESIGN.md calls out. Each bench
// runs reduced-size workloads (the full paper-shaped sweep lives in
// cmd/powercap-bench) and reports the headline quantities as custom
// metrics, so `go test -bench=.` doubles as a regression harness for
// the reproduction's shape: who wins, by what factor, and where the
// cliffs sit.

import (
	"testing"

	"nodecap/internal/amenability"
	"nodecap/internal/cache"
	"nodecap/internal/core"
	"nodecap/internal/fleet"
	"nodecap/internal/machine"
	"nodecap/internal/multicore"
	"nodecap/internal/simtime"
	"nodecap/internal/workloads/bursty"
	"nodecap/internal/workloads/parallel"
	"nodecap/internal/workloads/sar"
	"nodecap/internal/workloads/stereo"
	"nodecap/internal/workloads/stride"
)

// benchSARConfig keeps the > L3 streaming footprint but trims the
// image-formation phase.
func benchSARConfig() sar.Config {
	cfg := sar.DefaultConfig()
	cfg.RSMIterations = 2
	cfg.ImageSize = 48
	return cfg
}

// benchStereoConfig keeps the L3-resident random working set with one
// annealing sweep.
func benchStereoConfig() stereo.Config {
	cfg := stereo.DefaultConfig()
	cfg.Sweeps = 1
	return cfg
}

func runOnce(w machine.Workload, capWatts float64, seed uint64) machine.RunResult {
	cfg := machine.Romley()
	cfg.Seed = seed
	m := machine.New(cfg)
	m.SetPolicy(capWatts)
	return m.RunWorkload(w)
}

// BenchmarkTableI_SIRE measures the SIRE/RSM baseline row of Table I.
func BenchmarkTableI_SIRE(b *testing.B) {
	var last machine.RunResult
	for i := 0; i < b.N; i++ {
		last = runOnce(sar.New(benchSARConfig()), 0, uint64(i))
	}
	b.ReportMetric(last.AvgPowerWatts, "node-W")
	b.ReportMetric(last.ExecTime.Seconds()*1e3, "virt-ms")
}

// BenchmarkTableI_Stereo measures the Stereo Matching baseline row.
func BenchmarkTableI_Stereo(b *testing.B) {
	var last machine.RunResult
	for i := 0; i < b.N; i++ {
		last = runOnce(stereo.New(benchStereoConfig()), 0, uint64(i))
	}
	b.ReportMetric(last.AvgPowerWatts, "node-W")
	b.ReportMetric(last.ExecTime.Seconds()*1e3, "virt-ms")
}

// tableIISweep runs a reduced Table II sweep (the representative caps)
// and reports the slowdown factors the paper's rows pivot on.
func tableIISweep(b *testing.B, mk func() machine.Workload) {
	b.Helper()
	caps := []float64{150, 140, 130, 120}
	var res core.SweepResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.Experiment{
			NewWorkload: mk,
			Caps:        caps,
			Trials:      1,
		}.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	base := res.Baseline.TimeSeconds
	for i, cap := range caps {
		r := res.Capped[i]
		b.ReportMetric(r.TimeSeconds/base, byLabel(cap))
	}
	b.ReportMetric(res.Capped[len(caps)-1].PowerWatts, "floor-W")
}

func byLabel(cap float64) string {
	switch cap {
	case 150:
		return "slowdown150x"
	case 140:
		return "slowdown140x"
	case 130:
		return "slowdown130x"
	default:
		return "slowdown120x"
	}
}

// BenchmarkTableII_Stereo regenerates the A rows of Table II.
func BenchmarkTableII_Stereo(b *testing.B) {
	tableIISweep(b, func() machine.Workload { return stereo.New(benchStereoConfig()) })
}

// BenchmarkTableII_SIRE regenerates the B rows of Table II.
func BenchmarkTableII_SIRE(b *testing.B) {
	tableIISweep(b, func() machine.Workload { return sar.New(benchSARConfig()) })
}

// BenchmarkFigure1_SIRESeries regenerates Figure 1's normalized series
// end-to-end (sweep, normalization) and reports the frequency floor.
func BenchmarkFigure1_SIRESeries(b *testing.B) {
	var res core.SweepResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.Experiment{
			NewWorkload: func() machine.Workload { return sar.New(benchSARConfig()) },
			Caps:        []float64{150, 130, 120},
			Trials:      1,
		}.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	freq := res.Series(func(r core.CapResult) float64 { return r.FreqMHz })
	b.ReportMetric(freq[len(freq)-1]/freq[0], "freq-floor-frac")
}

// BenchmarkFigure2_StereoSeries regenerates Figure 2's series and
// reports the L3 miss-rate growth the figure shows.
func BenchmarkFigure2_StereoSeries(b *testing.B) {
	var res core.SweepResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = core.Experiment{
			NewWorkload: func() machine.Workload { return stereo.New(benchStereoConfig()) },
			Caps:        []float64{150, 130, 120},
			Trials:      1,
		}.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
	l3 := res.Series(func(r core.CapResult) float64 { return r.Counters.L3Misses })
	b.ReportMetric(l3[len(l3)-1]/l3[0], "l3-growth-x")
}

// strideBenchConfig trims the sweep enough for a bench iteration while
// keeping all three capacity cliffs in range.
func strideBenchConfig() stride.Config {
	cfg := stride.DefaultConfig()
	cfg.MaxArrayBytes = 64 << 20
	cfg.TouchesPerPoint = 1024
	// Warm coverage must exceed the 20 MiB L3 or the largest arrays'
	// measured prefixes stay L3-resident and the memory boundary
	// disappears from the inference.
	cfg.WarmCapTouches = 512 << 10
	return cfg
}

// BenchmarkFigure3_StrideUncapped regenerates Figure 3 and reports the
// inferred per-level access times.
func BenchmarkFigure3_StrideUncapped(b *testing.B) {
	var pts []stride.Point
	for i := 0; i < b.N; i++ {
		p := stride.New(strideBenchConfig())
		m := machine.New(machine.Romley())
		m.RunWorkload(p)
		pts = p.Points()
	}
	g, err := stride.Infer(pts)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(g.L1Nanos, "L1-ns")
	b.ReportMetric(g.L2Nanos, "L2-ns")
	b.ReportMetric(g.L3Nanos, "L3-ns")
	b.ReportMetric(g.MemNanos, "mem-ns")
}

// BenchmarkFigure4_StrideCapped regenerates Figure 4 (120 W) and
// reports how far the memory level inflates over the uncapped probe.
func BenchmarkFigure4_StrideCapped(b *testing.B) {
	cfg := strideBenchConfig()
	cfg.MaxArrayBytes = 8 << 20
	cfg.TouchesPerPoint = 512
	cfg.WarmCapTouches = 128 << 10
	find := func(pts []stride.Point, size, strideBytes int) float64 {
		for _, pt := range pts {
			if pt.ArrayBytes == size && pt.StrideBytes == strideBytes {
				return pt.AvgAccessNanos
			}
		}
		return 0
	}
	var capped, base float64
	for i := 0; i < b.N; i++ {
		pb := stride.New(cfg)
		mb := machine.New(machine.Romley())
		mb.RunWorkload(pb)
		base = find(pb.Points(), 8<<20, 64)

		pc := stride.New(cfg)
		mc := machine.New(machine.Romley())
		mc.SetPolicy(120)
		mc.RunWorkload(pc)
		capped = find(pc.Points(), 8<<20, 64)
	}
	b.ReportMetric(base, "base-ns")
	b.ReportMetric(capped, "capped-ns")
	b.ReportMetric(capped/base, "inflation-x")
}

// BenchmarkAblationDVFSOnly removes the gating ladder: the controller
// can no longer track caps below the slowest P-state's power, but the
// low-cap execution-time blow-up disappears — the trade the paper's
// Section IV-B uncovers.
func BenchmarkAblationDVFSOnly(b *testing.B) {
	var full, dvfs machine.RunResult
	for i := 0; i < b.N; i++ {
		full = runOnce(stereo.New(benchStereoConfig()), 120, 1)

		cfg := machine.Romley()
		cfg.Ladder = machine.DVFSOnlyLadder()
		m := machine.New(cfg)
		m.SetPolicy(120)
		dvfs = m.RunWorkload(stereo.New(benchStereoConfig()))
	}
	b.ReportMetric(full.ExecTime.Seconds()/dvfs.ExecTime.Seconds(), "gating-penalty-x")
	b.ReportMetric(dvfs.AvgPowerWatts, "dvfs-only-W")
	b.ReportMetric(full.AvgPowerWatts, "full-ladder-W")
}

// BenchmarkAblationNoDither clamps the controller to hold whatever
// P-state it first satisfies the cap at (huge up-hysteresis): average
// frequency becomes a grid value instead of Table II's intermediate
// averages, and time-to-solution worsens at caps that fall between
// P-state power levels.
func BenchmarkAblationNoDither(b *testing.B) {
	var dither, clamp machine.RunResult
	for i := 0; i < b.N; i++ {
		dither = runOnce(sar.New(benchSARConfig()), 145, 1)

		cfg := machine.Romley()
		cfg.BMC.HysteresisWatts = 1e9 // never step back up
		m := machine.New(cfg)
		m.SetPolicy(145)
		clamp = m.RunWorkload(sar.New(benchSARConfig()))
	}
	b.ReportMetric(dither.AvgFreqMHz, "dither-MHz")
	b.ReportMetric(clamp.AvgFreqMHz, "clamped-MHz")
	b.ReportMetric(clamp.ExecTime.Seconds()/dither.ExecTime.Seconds(), "clamp-penalty-x")
}

// BenchmarkAblationControlPeriod compares the default control period
// against a 10x slower controller: convergence transients lengthen and
// cap overshoot grows.
func BenchmarkAblationControlPeriod(b *testing.B) {
	var fast, slow machine.RunResult
	for i := 0; i < b.N; i++ {
		fast = runOnce(stereo.New(benchStereoConfig()), 135, 1)

		cfg := machine.Romley()
		cfg.BMC.ControlPeriod = 10 * cfg.BMC.ControlPeriod
		m := machine.New(cfg)
		m.SetPolicy(135)
		slow = m.RunWorkload(stereo.New(benchStereoConfig()))
	}
	b.ReportMetric(fast.BMCStats.OverCapFraction(), "fast-overcap-frac")
	b.ReportMetric(slow.BMCStats.OverCapFraction(), "slow-overcap-frac")
	b.ReportMetric(slow.AvgPowerWatts-fast.AvgPowerWatts, "extra-W")
}

// BenchmarkAblationReplacement swaps the caches' true-LRU for random
// replacement and measures the stereo workload's L3 misses under deep
// way gating: the miss cliff the paper observes depends on LRU's stack
// behaviour.
func BenchmarkAblationReplacement(b *testing.B) {
	run := func(policy cache.ReplacementPolicy) machine.RunResult {
		cfg := machine.Romley()
		cfg.Hierarchy.L1D.Replacement = policy
		cfg.Hierarchy.L2.Replacement = policy
		cfg.Hierarchy.L3.Replacement = policy
		m := machine.New(cfg)
		m.SetPolicy(120)
		return m.RunWorkload(stereo.New(benchStereoConfig()))
	}
	var lru, random machine.RunResult
	for i := 0; i < b.N; i++ {
		lru = run(cache.LRU)
		random = run(cache.Random)
	}
	b.ReportMetric(float64(lru.Counters.L3Misses), "lru-l3-misses")
	b.ReportMetric(float64(random.Counters.L3Misses), "random-l3-misses")
}

// BenchmarkFutureWorkMulticore quantifies the multi-core future-work
// question: speedup at 4 cores with and without a node cap, and the
// capped run's operating point.
func BenchmarkFutureWorkMulticore(b *testing.B) {
	wcfg := sar.DefaultConfig()
	wcfg.RSMIterations = 1
	wcfg.ImageSize = 48
	runMC := func(cores int, cap float64) multicore.Result {
		m := multicore.New(multicore.DefaultConfig(cores))
		m.SetPolicy(cap)
		return m.Run(parallel.NewSAR(wcfg))
	}
	var one, four, fourCap multicore.Result
	for i := 0; i < b.N; i++ {
		one = runMC(1, 0)
		four = runMC(4, 0)
		fourCap = runMC(4, 200)
	}
	b.ReportMetric(four.SpeedupOver(one), "speedup4x")
	b.ReportMetric(fourCap.SpeedupOver(one), "speedup4x-capped")
	b.ReportMetric(fourCap.AvgFreqMHz, "capped-MHz")
	b.ReportMetric(four.AvgPowerWatts, "uncapped-W")
}

// BenchmarkFutureWorkAmenability runs the characterization methodology
// end to end and reports its predictions for the study's headline
// contrast (stereo vs SAR at a deep cap).
func BenchmarkFutureWorkAmenability(b *testing.B) {
	cfg := machine.Romley()
	stereoCfg := stereo.SmallConfig()
	stereoCfg.Width, stereoCfg.Height = 416, 416
	stereoCfg.Sweeps = 1
	sarCfg := sar.SmallConfig()
	sarCfg.Apertures = 96
	sarCfg.SamplesPerAperture = 8192

	var stScore, saScore float64
	for i := 0; i < b.N; i++ {
		cal := amenability.Calibrate(cfg, []float64{140, 120}, 0)
		st := amenability.ProfileApp("stereo",
			func() machine.Workload { return stereo.New(stereoCfg) }, cfg, 0)
		sa := amenability.ProfileApp("sar",
			func() machine.Workload { return sar.New(sarCfg) }, cfg, 0)
		stScore, saScore = st.Score(cal), sa.Score(cal)
	}
	b.ReportMetric(stScore, "stereo-deepcap-x")
	b.ReportMetric(saScore, "sar-deepcap-x")
}

// BenchmarkFutureWorkBurstyCap measures the unpredictable-workload
// experiment: how much of the supply-budget violation an enforced cap
// removes, and what it costs in time.
func BenchmarkFutureWorkBurstyCap(b *testing.B) {
	cfg := bursty.DefaultConfig()
	var rows []bursty.CapStudy
	for i := 0; i < b.N; i++ {
		rows = bursty.RunStudy(cfg, []float64{135}, 135, 0)
	}
	b.ReportMetric(rows[0].Profile.OverBudgetFraction, "uncapped-overbudget")
	b.ReportMetric(rows[1].Profile.OverBudgetFraction, "capped-overbudget")
	b.ReportMetric(rows[1].Result.ExecTime.Seconds()/rows[0].Result.ExecTime.Seconds(), "cap-cost-x")
}

// BenchmarkMachineOpThroughput measures the simulator's own speed:
// simulated memory operations per wall second, the quantity that
// bounds every experiment above.
func BenchmarkMachineOpThroughput(b *testing.B) {
	m := machine.New(machine.Romley())
	base := m.Alloc(1 << 22)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Load(base + uint64(i%65536)*64)
	}
}

// BenchmarkFleetTick measures the SoA fleet engine's batch stepping
// rate at chaos scale: 10k capped nodes advanced one control tick per
// iteration, sharded one range per CPU. The custom metric is the
// headline quantity (node-ticks per wall second); steady state must
// stay allocation-free, which bench-smoke CI enforces via benchdiff
// against the committed BENCH_8.json medians.
func BenchmarkFleetTick(b *testing.B) {
	const nodes = 10000
	e := fleet.New(fleet.Config{Nodes: nodes, Seed: 1})
	defer e.Close()
	for i := 0; i < nodes; i++ {
		e.PushPolicy(i, true, 140, 0)
	}
	e.Tick(1) // warm the gang and settle lazy state
	b.ReportAllocs()
	b.ResetTimer()
	e.Tick(b.N)
	b.StopTimer()
	b.ReportMetric(float64(nodes)*float64(b.N)/b.Elapsed().Seconds(), "node-ticks/s")
}

// sweepAtParallelism runs the ISSUE's reference grid (4 caps x 3
// trials + baseline) at a fixed worker-pool width so the two variants
// below measure the pool's wall-clock scaling on the same work.
func sweepAtParallelism(b *testing.B, parallelism int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		_, err := core.Experiment{
			NewWorkload: func() machine.Workload { return stereo.New(benchStereoConfig()) },
			Caps:        []float64{150, 140, 130, 120},
			Trials:      3,
			Parallelism: parallelism,
		}.Run()
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepParallel1 is the sequential reference for the cap-sweep
// worker pool; compare against BenchmarkSweepParallel4 on a multi-core
// host to see the scaling.
func BenchmarkSweepParallel1(b *testing.B) { sweepAtParallelism(b, 1) }

// BenchmarkSweepParallel4 runs the same grid on four workers. The
// sweep is embarrassingly parallel (15 independent machine runs), so
// on >= 4 free cores this approaches a 4x speedup over Parallel1.
func BenchmarkSweepParallel4(b *testing.B) { sweepAtParallelism(b, 4) }

// BenchmarkBMCSettle measures how much simulated time the controller
// needs to settle a 130 W cap from cold, reported in virtual
// microseconds.
func BenchmarkBMCSettle(b *testing.B) {
	var settle simtime.Duration
	for i := 0; i < b.N; i++ {
		cfg := machine.Romley()
		m := machine.New(cfg)
		m.SetPolicy(130)
		res := m.RunWorkload(stereo.New(benchStereoConfig()))
		// Settled when the frequency floor is reached: approximate via
		// steps-down count times the control period.
		settle = simtime.Duration(res.BMCStats.StepsDown) * cfg.BMC.ControlPeriod
	}
	b.ReportMetric(settle.Nanos()/1e3, "settle-virt-us")
}

// BenchmarkAblationTStates answers "could the paper's platform have
// honoured its 120 W cap?": with ACPI clock modulation appended to the
// escalation ladder the cap is reachable, at a further time cost —
// without it the node floors at ~123 W (Table II rows A9/B9).
func BenchmarkAblationTStates(b *testing.B) {
	var plain, tstates machine.RunResult
	for i := 0; i < b.N; i++ {
		plain = runOnce(stereo.New(benchStereoConfig()), 120, 1)

		cfg := machine.Romley()
		cfg.TStates = []float64{0.75, 0.5, 0.25, 0.125}
		m := machine.New(cfg)
		m.SetPolicy(120)
		tstates = m.RunWorkload(stereo.New(benchStereoConfig()))
	}
	b.ReportMetric(plain.AvgPowerWatts, "no-tstates-W")
	b.ReportMetric(tstates.AvgPowerWatts, "tstates-W")
	b.ReportMetric(tstates.ExecTime.Seconds()/plain.ExecTime.Seconds(), "extra-cost-x")
}
