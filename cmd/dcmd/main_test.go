package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"nodecap/internal/dcm"
	"nodecap/internal/faults"
	"nodecap/internal/ipmi"
	"nodecap/internal/machine"
	"nodecap/internal/nodeagent"
	"nodecap/internal/telemetry"
)

func TestParseFlagsDefaultsAndOverrides(t *testing.T) {
	o, err := parseFlags(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.Listen != "127.0.0.1:9650" || o.MetricsAddr != "" {
		t.Errorf("defaults: %+v", o)
	}
	if o.Poll != time.Second || o.PollWorkers != dcm.DefaultPollConcurrency {
		t.Errorf("defaults: %+v", o)
	}

	o, err = parseFlags([]string{
		"-listen", "127.0.0.1:0",
		"-metrics-addr", "127.0.0.1:0",
		"-poll", "250ms",
		"-poll-workers", "3",
		"-budget", "420",
		"-group", "a,b,c",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.MetricsAddr != "127.0.0.1:0" || o.Poll != 250*time.Millisecond ||
		o.PollWorkers != 3 || o.Budget != 420 || o.Group != "a,b,c" {
		t.Errorf("overrides: %+v", o)
	}

	if _, err := parseFlags([]string{"-no-such-flag"}, io.Discard); err == nil {
		t.Error("unknown flag accepted")
	}
}

// testHarness is one simulated node behind a fault-injecting transport
// plus a daemon dialed through it.
type testHarness struct {
	agent     *nodeagent.Agent
	srv       *ipmi.Server
	transport *faults.Transport
	d         *daemon
}

func newHarness(t *testing.T) *testHarness {
	t.Helper()
	h := &testHarness{}
	h.agent = nodeagent.New(machine.Romley(), nodeagent.Options{})
	t.Cleanup(h.agent.Stop)
	h.srv = ipmi.NewServer(h.agent)
	addr, err := h.srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.srv.Close() })
	h.transport = faults.New(faults.Profile{Seed: 1})

	opts := options{
		Listen:      "127.0.0.1:0",
		MetricsAddr: "127.0.0.1:0",
		Poll:        time.Hour, // tests poll explicitly
		RetryBase:   time.Nanosecond,
		RetryMax:    time.Nanosecond,
		StaleAfter:  dcm.DefaultStaleAfter,
		PollWorkers: 2,
	}
	dial := func(a string) (dcm.BMC, error) {
		conn, err := h.transport.Dial("tcp", a, time.Second)
		if err != nil {
			return nil, err
		}
		c := ipmi.NewClientConn(conn)
		c.SetRequestTimeout(time.Second)
		return c, nil
	}
	d, err := start(opts, dial, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	h.d = d

	if resp := d.srv.Handle(dcm.Request{Op: "add", Name: "sim0", Addr: addr}); resp.Error != "" {
		t.Fatalf("add: %s", resp.Error)
	}
	return h
}

func (h *testHarness) scrape(t *testing.T) map[string]float64 {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", h.d.MetricsAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var name string
		var v float64
		if _, err := fmt.Sscanf(line, "%s %g", &name, &v); err == nil {
			out[name] = v
		}
	}
	return out
}

// TestDaemonServesMetrics: the -metrics-addr surface end to end — cap
// pushes and polls move the counters, the wire-level series are
// advertised, and a partition drives the backoff counter up.
func TestDaemonServesMetrics(t *testing.T) {
	h := newHarness(t)

	if resp := h.d.srv.Handle(dcm.Request{Op: "setcap", Name: "sim0", Cap: 145}); resp.Error != "" {
		t.Fatalf("setcap: %s", resp.Error)
	}
	h.d.mgr.Poll()

	m := h.scrape(t)
	if m["dcm_cap_pushes_total"] < 1 {
		t.Errorf("dcm_cap_pushes_total = %v, want >= 1", m["dcm_cap_pushes_total"])
	}
	if m["dcm_polls_total"] < 1 {
		t.Errorf("dcm_polls_total = %v, want >= 1", m["dcm_polls_total"])
	}
	if m["dcm_nodes"] != 1 || m["dcm_nodes_reachable"] != 1 {
		t.Errorf("fleet gauges: nodes=%v reachable=%v", m["dcm_nodes"], m["dcm_nodes_reachable"])
	}
	if _, ok := m["ipmi_requests_total"]; !ok {
		t.Error("ipmi_requests_total not advertised")
	}
	if m["dcm_poll_seconds_count"] < 1 {
		t.Errorf("dcm_poll_seconds_count = %v, want >= 1", m["dcm_poll_seconds_count"])
	}

	// Partition the node: dials fail and in-flight writes are dropped,
	// so the next polls must arm backoff and drop reachability.
	h.transport.SetProfile(faults.Profile{Seed: 1, DialErrorProb: 1, DropWrites: true})
	before := m["dcm_backoffs_armed_total"]
	h.d.mgr.Poll()
	h.d.mgr.Poll()
	m = h.scrape(t)
	if m["dcm_backoffs_armed_total"] <= before {
		t.Errorf("dcm_backoffs_armed_total stuck at %v under a full partition", m["dcm_backoffs_armed_total"])
	}
	if m["dcm_nodes_reachable"] != 0 {
		t.Errorf("dcm_nodes_reachable = %v after partition, want 0", m["dcm_nodes_reachable"])
	}
}

// TestDaemonServesTrace: /trace emits NDJSON decision events, newest
// last, filterable by node.
func TestDaemonServesTrace(t *testing.T) {
	h := newHarness(t)
	if resp := h.d.srv.Handle(dcm.Request{Op: "setcap", Name: "sim0", Cap: 150}); resp.Error != "" {
		t.Fatalf("setcap: %s", resp.Error)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/trace?node=sim0", h.d.MetricsAddr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []telemetry.Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev telemetry.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if len(events) == 0 {
		t.Fatal("no trace events after a cap push")
	}
	found := false
	for _, ev := range events {
		if ev.Kind == telemetry.EvCapPush && ev.Node == "sim0" && ev.Watts == 150 {
			found = true
		}
	}
	if !found {
		t.Errorf("no cap-push event for sim0 in %+v", events)
	}

	// The control plane serves the same trace via the "trace" op.
	tr := h.d.srv.Handle(dcm.Request{Op: "trace", Name: "sim0"})
	if !tr.OK || len(tr.Trace) == 0 {
		t.Errorf("trace op: %+v", tr)
	}
}

// TestMetricsDisabledByDefault: no -metrics-addr, no HTTP listener.
func TestMetricsDisabledByDefault(t *testing.T) {
	opts := options{Listen: "127.0.0.1:0", Poll: time.Hour}
	d, err := start(opts, func(string) (dcm.BMC, error) { return nil, fmt.Errorf("no nodes") }, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.MetricsAddr != "" {
		t.Errorf("MetricsAddr = %q, want empty", d.MetricsAddr)
	}
}
