package main

import (
	"fmt"
	"testing"
	"time"

	"nodecap/internal/dcm"
	"nodecap/internal/ipmi"
	"nodecap/internal/machine"
	"nodecap/internal/nodeagent"
)

// shardedOpts is the daemon configuration every sharded test shares;
// restart tests reuse it verbatim against the same state dir.
func shardedOpts(stateDir string) options {
	return options{
		Listen:      "127.0.0.1:0",
		Poll:        time.Hour, // tests poll explicitly
		ConnectTO:   time.Second,
		RequestTO:   time.Second,
		RetryBase:   time.Nanosecond,
		RetryMax:    time.Nanosecond,
		StaleAfter:  dcm.DefaultStaleAfter,
		PollWorkers: 2,
		StateDir:    stateDir,
		Shards:      2,
	}
}

// startBMCs brings up n simulated nodes and returns their addresses.
func startBMCs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		agent := nodeagent.New(machine.Romley(), nodeagent.Options{})
		t.Cleanup(agent.Stop)
		srv := ipmi.NewServer(agent)
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[i] = addr
	}
	return addrs
}

// TestShardedDaemonLifecycle drives a -shards daemon end to end: adds
// route through the ring to leaf managers, fleet listings aggregate
// across the leaves sorted, per-node ops reach the owner, and the
// budget op cascades across the tree.
func TestShardedDaemonLifecycle(t *testing.T) {
	addrs := startBMCs(t, 4)
	opts := shardedOpts(t.TempDir())
	d, err := start(opts, nil, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for i, a := range addrs {
		if resp := d.srv.Handle(dcm.Request{Op: "add", Name: fmt.Sprintf("n%d", i), Addr: a}); resp.Error != "" {
			t.Fatalf("add n%d: %s", i, resp.Error)
		}
	}

	resp := d.srv.Handle(dcm.Request{Op: "nodes"})
	if resp.Error != "" || resp.Role != "aggregator" {
		t.Fatalf("nodes: %+v", resp)
	}
	if len(resp.Nodes) != len(addrs) {
		t.Fatalf("aggregate lists %d of %d nodes", len(resp.Nodes), len(addrs))
	}
	for i := 1; i < len(resp.Nodes); i++ {
		if resp.Nodes[i-1].Name >= resp.Nodes[i].Name {
			t.Fatalf("aggregate not sorted: %q before %q", resp.Nodes[i-1].Name, resp.Nodes[i].Name)
		}
	}

	resp = d.srv.Handle(dcm.Request{Op: "shards"})
	if resp.Error != "" || len(resp.Shards) != opts.Shards {
		t.Fatalf("shards: %+v", resp)
	}
	total := 0
	for _, sh := range resp.Shards {
		if !sh.Alive {
			t.Errorf("leaf %s not alive", sh.Leaf)
		}
		total += sh.Nodes
	}
	if total != len(addrs) {
		t.Fatalf("shards own %d of %d nodes", total, len(addrs))
	}

	if resp := d.srv.Handle(dcm.Request{Op: "setcap", Name: "n0", Cap: 150}); resp.Error != "" {
		t.Fatalf("setcap: %s", resp.Error)
	}
	if resp := d.srv.Handle(dcm.Request{Op: "settier", Name: "n1", Tier: "high"}); resp.Error != "" {
		t.Fatalf("settier: %s", resp.Error)
	}
	resp = d.srv.Handle(dcm.Request{Op: "budget", Budget: 500})
	if resp.Error != "" || len(resp.Allocs) != opts.Shards {
		t.Fatalf("budget: %+v", resp)
	}
	var granted float64
	for _, a := range resp.Allocs {
		granted += a.CapWatts
	}
	if granted > 500+1e-6 {
		t.Fatalf("cascade granted %.1f W of a 500 W budget", granted)
	}
}

// TestShardedDaemonRestartRestoresOwnership: a restarted daemon
// reloads the journaled shard map and the per-leaf registries, so the
// fleet comes back with identical ownership and no re-adds.
func TestShardedDaemonRestartRestoresOwnership(t *testing.T) {
	addrs := startBMCs(t, 4)
	opts := shardedOpts(t.TempDir())
	d, err := start(opts, nil, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range addrs {
		if resp := d.srv.Handle(dcm.Request{Op: "add", Name: fmt.Sprintf("n%d", i), Addr: a}); resp.Error != "" {
			t.Fatalf("add n%d: %s", i, resp.Error)
		}
	}
	owners := make(map[string]string)
	for i := range addrs {
		name := fmt.Sprintf("n%d", i)
		owner, ok := d.shTree.Owner(name)
		if !ok {
			t.Fatalf("no owner for %s", name)
		}
		owners[name] = owner
	}
	d.Close()

	d2, err := start(opts, nil, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	resp := d2.srv.Handle(dcm.Request{Op: "nodes"})
	if len(resp.Nodes) != len(addrs) {
		t.Fatalf("restart lists %d of %d nodes", len(resp.Nodes), len(addrs))
	}
	for name, want := range owners {
		got, ok := d2.shTree.Owner(name)
		if !ok || got != want {
			t.Errorf("restart moved %s: owner %q (was %q)", name, got, want)
		}
	}
}

// TestShardedAggregatorLoop: with -aggregator the cascade runs without
// operator pushes; each leaf eventually reports its granted budget.
func TestShardedAggregatorLoop(t *testing.T) {
	addrs := startBMCs(t, 2)
	opts := shardedOpts("")
	opts.Budget = 400
	opts.Aggregator = 10 * time.Millisecond
	d, err := start(opts, nil, func(string, ...any) {})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i, a := range addrs {
		if resp := d.srv.Handle(dcm.Request{Op: "add", Name: fmt.Sprintf("n%d", i), Addr: a}); resp.Error != "" {
			t.Fatalf("add n%d: %s", i, resp.Error)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := d.srv.Handle(dcm.Request{Op: "shards"})
		var granted float64
		for _, sh := range resp.Shards {
			granted += sh.BudgetWatts
		}
		if granted > 0 && granted <= 400+1e-6 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("cascade never granted a budget: %+v", resp.Shards)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestShardedFlagValidation: -shards refuses configurations whose
// semantics it cannot honour.
func TestShardedFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		opts options
	}{
		{"ha pair", options{Shards: 2, ReplicaAddr: "127.0.0.1:0", StateDir: t.TempDir(), Listen: "127.0.0.1:0", Poll: time.Hour}},
		{"group", options{Shards: 2, Group: "a,b", Listen: "127.0.0.1:0", Poll: time.Hour}},
		{"aggregator without budget", options{Shards: 2, Aggregator: time.Second, Listen: "127.0.0.1:0", Poll: time.Hour}},
		{"too many leaves", options{Shards: 100, Listen: "127.0.0.1:0", Poll: time.Hour}},
	}
	for _, tc := range cases {
		if d, err := start(tc.opts, nil, func(string, ...any) {}); err == nil {
			d.Close()
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
