// Command dcmd runs the Data Center Manager: it maintains IPMI
// connections to a fleet of simulated nodes (see cmd/nodesimd),
// monitors their power, and exposes the JSON control plane that
// cmd/dcmctl drives.
//
// Usage:
//
//	dcmd -listen 127.0.0.1:9650 -poll 1s -metrics-addr 127.0.0.1:9651
//
// With -state-dir the registry, desired caps and any group budget are
// journaled crash-safely; a restarted dcmd reloads them and reconciles
// every node's live policy back to the desired state within one poll.
//
// With -metrics-addr the daemon serves /metrics (Prometheus text
// exposition) and /trace (NDJSON control-decision trace) over HTTP.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nodecap/internal/dcm"
	"nodecap/internal/ipmi"
	"nodecap/internal/telemetry"
)

// options holds every dcmd flag, separated from flag parsing so tests
// can build configurations directly.
type options struct {
	Listen      string
	MetricsAddr string
	Poll        time.Duration
	Budget      float64
	Group       string
	Rebalance   time.Duration
	ConnectTO   time.Duration
	RequestTO   time.Duration
	RetryBase   time.Duration
	RetryMax    time.Duration
	PollWorkers int
	StateDir    string
	StaleAfter  time.Duration
	Tiers       string
}

// parseFlags parses args into options (no global flag state, so tests
// can call it repeatedly).
func parseFlags(args []string, stderr io.Writer) (options, error) {
	fs := flag.NewFlagSet("dcmd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.StringVar(&o.Listen, "listen", "127.0.0.1:9650", "control-plane address")
	fs.StringVar(&o.MetricsAddr, "metrics-addr", "", "HTTP address for /metrics and /trace (empty = disabled)")
	fs.DurationVar(&o.Poll, "poll", time.Second, "monitoring poll interval")
	fs.Float64Var(&o.Budget, "budget", 0, "group power budget in watts (0 = no auto-balancing)")
	fs.StringVar(&o.Group, "group", "", "comma-separated node names the budget covers")
	fs.DurationVar(&o.Rebalance, "rebalance", 5*time.Second, "auto-balance interval")
	fs.DurationVar(&o.ConnectTO, "connect-timeout", ipmi.DefaultConnectTimeout, "BMC TCP connect timeout")
	fs.DurationVar(&o.RequestTO, "request-timeout", ipmi.DefaultRequestTimeout, "per-exchange BMC request timeout")
	fs.DurationVar(&o.RetryBase, "retry-base", dcm.DefaultRetryBaseDelay, "initial redial backoff for a failed node")
	fs.DurationVar(&o.RetryMax, "retry-max", dcm.DefaultRetryMaxDelay, "backoff ceiling for a failed node")
	fs.IntVar(&o.PollWorkers, "poll-workers", dcm.DefaultPollConcurrency, "max nodes sampled in parallel per sweep")
	fs.StringVar(&o.StateDir, "state-dir", "", "durable state directory: registry, caps and budget survive restarts")
	fs.DurationVar(&o.StaleAfter, "stale-after", dcm.DefaultStaleAfter, "age after which an unreachable node's demand stops counting in budgets")
	fs.StringVar(&o.Tiers, "tiers", "", "comma-separated NAME=high|low priority presets applied as nodes register")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	return o, nil
}

// daemon is a running dcmd instance; tests drive it in-process.
type daemon struct {
	mgr   *dcm.Manager
	srv   *dcm.Server
	reg   *telemetry.Registry
	trace *telemetry.Trace

	ControlAddr string
	MetricsAddr string // empty when disabled

	httpSrv *http.Server
	httpLn  net.Listener
}

// start builds and launches a daemon from opts. A nil dial uses the
// real IPMI dialer (with wire-level request counters); tests inject
// their own.
func start(opts options, dial dcm.Dialer, logf func(format string, args ...any)) (*daemon, error) {
	if logf == nil {
		logf = log.Printf
	}
	reg := telemetry.NewRegistry()
	trace := telemetry.NewTrace(telemetry.DefaultTraceCapacity)
	// Register the wire-level series up front so the scrape surface is
	// stable whether or not the default dialer is in use.
	ipmiReqs := reg.Counter("ipmi_requests_total")
	ipmiFails := reg.Counter("ipmi_request_failures_total")
	if dial == nil {
		dial = func(addr string) (dcm.BMC, error) {
			c, err := ipmi.DialTimeout(addr, opts.ConnectTO, opts.RequestTO)
			if err != nil {
				return nil, err
			}
			c.SetCounters(ipmiReqs, ipmiFails)
			return c, nil
		}
	}

	mgr := dcm.NewManager(dial)
	mgr.RetryBaseDelay = opts.RetryBase
	mgr.RetryMaxDelay = opts.RetryMax
	mgr.PollConcurrency = opts.PollWorkers
	mgr.StaleAfter = opts.StaleAfter
	mgr.SetTelemetry(reg, trace)
	if opts.StateDir != "" {
		if err := mgr.OpenStateDir(opts.StateDir); err != nil {
			mgr.Close()
			return nil, err
		}
		if n := len(mgr.Nodes()); n > 0 {
			logf("dcmd: restored %d node(s) from %s; reconciling caps on the next poll", n, opts.StateDir)
		}
	}
	// After the state dir, so presets reach restored nodes immediately
	// (nodes registering later pick their preset up at AddNode).
	if opts.Tiers != "" {
		if err := applyTiers(mgr, opts.Tiers); err != nil {
			mgr.Close()
			return nil, err
		}
	}
	mgr.StartPolling(opts.Poll)
	switch {
	case opts.Budget > 0 && opts.Group != "":
		names := strings.Split(opts.Group, ",")
		mgr.StartAutoBalance(opts.Budget, names, opts.Rebalance)
		logf("dcmd: auto-balancing %.0f W across %v every %v", opts.Budget, names, opts.Rebalance)
	default:
		// No budget on the command line: re-arm the one the state dir
		// holds, if any — a restart must not silently drop the fleet's
		// power budget.
		if watts, names, interval, ok := mgr.RestoredBudget(); ok {
			mgr.StartAutoBalance(watts, names, interval)
			logf("dcmd: restored auto-balance of %.0f W across %v every %v", watts, names, interval)
		}
	}

	srv := dcm.NewServer(mgr)
	addr, err := srv.Listen(opts.Listen)
	if err != nil {
		mgr.Close()
		return nil, fmt.Errorf("dcmd: listen: %w", err)
	}
	d := &daemon{
		mgr: mgr, srv: srv, reg: reg, trace: trace,
		ControlAddr: addr,
	}

	if opts.MetricsAddr != "" {
		ln, err := net.Listen("tcp", opts.MetricsAddr)
		if err != nil {
			d.Close()
			return nil, fmt.Errorf("dcmd: metrics listen: %w", err)
		}
		d.httpLn = ln
		d.MetricsAddr = ln.Addr().String()
		d.httpSrv = &http.Server{Handler: telemetry.Handler(reg, trace)}
		go d.httpSrv.Serve(ln)
		logf("dcmd: metrics on http://%s/metrics, trace on /trace", d.MetricsAddr)
	}
	return d, nil
}

// applyTiers parses the -tiers flag ("NAME=high,NAME2=low") into tier
// presets honoured as each named node registers.
func applyTiers(mgr *dcm.Manager, spec string) error {
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, tierStr, ok := strings.Cut(pair, "=")
		if !ok || name == "" {
			return fmt.Errorf("dcmd: bad -tiers entry %q (want NAME=high|low)", pair)
		}
		tier, err := dcm.ParseTier(tierStr)
		if err != nil {
			return fmt.Errorf("dcmd: bad -tiers entry %q: %w", pair, err)
		}
		if err := mgr.PresetNodeTier(name, tier); err != nil {
			return err
		}
	}
	return nil
}

// Close tears the daemon down (HTTP first, then control plane, then
// the manager and its pollers).
func (d *daemon) Close() {
	if d.httpSrv != nil {
		d.httpSrv.Close()
	}
	if d.srv != nil {
		d.srv.Close()
	}
	d.mgr.Close()
}

func main() {
	opts, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(2)
	}
	d, err := start(opts, nil, nil)
	if err != nil {
		log.Fatalf("%v", err)
	}
	defer d.Close()
	log.Printf("dcmd: control plane on %s, polling every %v", d.ControlAddr, opts.Poll)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("dcmd: shutting down")
}
