// Command dcmd runs the Data Center Manager: it maintains IPMI
// connections to a fleet of simulated nodes (see cmd/nodesimd),
// monitors their power, and exposes the JSON control plane that
// cmd/dcmctl drives.
//
// Usage:
//
//	dcmd -listen 127.0.0.1:9650 -poll 1s
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nodecap/internal/dcm"
	"nodecap/internal/ipmi"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9650", "control-plane address")
	poll := flag.Duration("poll", time.Second, "monitoring poll interval")
	budget := flag.Float64("budget", 0, "group power budget in watts (0 = no auto-balancing)")
	group := flag.String("group", "", "comma-separated node names the budget covers")
	rebalance := flag.Duration("rebalance", 5*time.Second, "auto-balance interval")
	connectTO := flag.Duration("connect-timeout", ipmi.DefaultConnectTimeout, "BMC TCP connect timeout")
	requestTO := flag.Duration("request-timeout", ipmi.DefaultRequestTimeout, "per-exchange BMC request timeout")
	retryBase := flag.Duration("retry-base", dcm.DefaultRetryBaseDelay, "initial redial backoff for a failed node")
	retryMax := flag.Duration("retry-max", dcm.DefaultRetryMaxDelay, "backoff ceiling for a failed node")
	pollWorkers := flag.Int("poll-workers", dcm.DefaultPollConcurrency, "max nodes sampled in parallel per sweep")
	flag.Parse()

	mgr := dcm.NewManager(func(addr string) (dcm.BMC, error) {
		return ipmi.DialTimeout(addr, *connectTO, *requestTO)
	})
	mgr.RetryBaseDelay = *retryBase
	mgr.RetryMaxDelay = *retryMax
	mgr.PollConcurrency = *pollWorkers
	defer mgr.Close()
	mgr.StartPolling(*poll)
	if *budget > 0 && *group != "" {
		names := strings.Split(*group, ",")
		mgr.StartAutoBalance(*budget, names, *rebalance)
		log.Printf("dcmd: auto-balancing %.0f W across %v every %v", *budget, names, *rebalance)
	}

	srv := dcm.NewServer(mgr)
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("dcmd: listen: %v", err)
	}
	defer srv.Close()
	log.Printf("dcmd: control plane on %s, polling every %v", addr, *poll)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("dcmd: shutting down")
}
