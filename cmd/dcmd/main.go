// Command dcmd runs the Data Center Manager: it maintains IPMI
// connections to a fleet of simulated nodes (see cmd/nodesimd),
// monitors their power, and exposes the JSON control plane that
// cmd/dcmctl drives.
//
// Usage:
//
//	dcmd -listen 127.0.0.1:9650 -poll 1s -metrics-addr 127.0.0.1:9651
//
// With -state-dir the registry, desired caps and any group budget are
// journaled crash-safely; a restarted dcmd reloads them and reconciles
// every node's live policy back to the desired state within one poll.
//
// With -metrics-addr the daemon serves /metrics (Prometheus text
// exposition) and /trace (NDJSON control-decision trace) over HTTP.
//
// # High availability
//
// Two daemons sharing a lease file (a shared filesystem path, -lease)
// form a primary/standby pair:
//
//	dcmd -state-dir /srv/a -replica-addr :9660 -lease /shared/dcm.lease
//	dcmd -state-dir /srv/b -standby-of primary:9660 -lease /shared/dcm.lease
//
// The primary streams every journal record to the standby over the
// replication link and stamps every cap push with its lease epoch; the
// nodes reject pushes carrying an older epoch, so a deposed primary
// cannot actuate the fleet no matter what it believes about its lease.
// When the primary stops renewing (crash, partition from the lease),
// the standby replays its replicated journal, takes the lease at a
// higher epoch, re-announces it to every node, re-arms the journaled
// budget, and takes over polling. SIGTERM/SIGINT shut down gracefully:
// polling drains, the journal compacts, and the lease is released so
// the peer can take over without waiting out the TTL.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"nodecap/internal/dcm"
	"nodecap/internal/dcm/store"
	"nodecap/internal/ipmi"
	"nodecap/internal/shard"
	"nodecap/internal/telemetry"
)

// options holds every dcmd flag, separated from flag parsing so tests
// can build configurations directly.
type options struct {
	Listen      string
	MetricsAddr string
	Poll        time.Duration
	Budget      float64
	Group       string
	Rebalance   time.Duration
	ConnectTO   time.Duration
	RequestTO   time.Duration
	RetryBase   time.Duration
	RetryMax    time.Duration
	PollWorkers int
	StateDir    string
	StaleAfter  time.Duration
	Tiers       string

	// Gray-failure defense (DESIGN §12). BreakerFailures trips a node's
	// circuit breaker after that many consecutive failed exchanges
	// (0 = the dcm default, negative disables breakers entirely);
	// SlowThreshold arms the latency trip — consecutive successful
	// exchanges slower than this also open the breaker (0 = off);
	// BreakerOpen is the open hold before a half-open probe (0 = the
	// retry-max backoff ceiling); HedgeDelay races a fresh-connection
	// cap push against a shared-path push stalled this long (0 = off);
	// PollBudget arms brownout shedding when a poll sweep overruns it
	// (0 = off).
	BreakerFailures int
	SlowThreshold   time.Duration
	BreakerOpen     time.Duration
	HedgeDelay      time.Duration
	PollBudget      time.Duration

	// HA pair wiring. ReplicaAddr serves the replication feed (primary
	// side); StandbyOf pulls a primary's feed and waits to take over;
	// Lease is the shared lease file both members can reach (default:
	// inside the state dir — correct only when the state dir itself is
	// shared); HAID names this member in the lease; LeaseTTL is the
	// leadership term.
	ReplicaAddr string
	StandbyOf   string
	Lease       string
	HAID        string
	LeaseTTL    time.Duration

	// Sharded control plane (DESIGN §13). Shards > 0 runs that many
	// leaf managers owning consistent-hash shards of the fleet under a
	// budget-cascading aggregator; Aggregator is the cascade interval
	// (0 = cascade only when dcmctl pushes a budget; requires -budget
	// when set). Incompatible with the HA pair flags and with -group
	// (the budget group is the whole tree).
	Shards     int
	Aggregator time.Duration
}

// parseFlags parses args into options (no global flag state, so tests
// can call it repeatedly).
func parseFlags(args []string, stderr io.Writer) (options, error) {
	fs := flag.NewFlagSet("dcmd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.StringVar(&o.Listen, "listen", "127.0.0.1:9650", "control-plane address")
	fs.StringVar(&o.MetricsAddr, "metrics-addr", "", "HTTP address for /metrics and /trace (empty = disabled)")
	fs.DurationVar(&o.Poll, "poll", time.Second, "monitoring poll interval")
	fs.Float64Var(&o.Budget, "budget", 0, "group power budget in watts (0 = no auto-balancing)")
	fs.StringVar(&o.Group, "group", "", "comma-separated node names the budget covers")
	fs.DurationVar(&o.Rebalance, "rebalance", 5*time.Second, "auto-balance interval")
	fs.DurationVar(&o.ConnectTO, "connect-timeout", ipmi.DefaultConnectTimeout, "BMC TCP connect timeout")
	fs.DurationVar(&o.RequestTO, "request-timeout", ipmi.DefaultRequestTimeout, "per-exchange BMC request timeout")
	fs.DurationVar(&o.RetryBase, "retry-base", dcm.DefaultRetryBaseDelay, "initial redial backoff for a failed node")
	fs.DurationVar(&o.RetryMax, "retry-max", dcm.DefaultRetryMaxDelay, "backoff ceiling for a failed node")
	fs.IntVar(&o.PollWorkers, "poll-workers", dcm.DefaultPollConcurrency, "max nodes sampled in parallel per sweep")
	fs.StringVar(&o.StateDir, "state-dir", "", "durable state directory: registry, caps and budget survive restarts")
	fs.DurationVar(&o.StaleAfter, "stale-after", dcm.DefaultStaleAfter, "age after which an unreachable node's demand stops counting in budgets")
	fs.StringVar(&o.Tiers, "tiers", "", "comma-separated NAME=high|low priority presets applied as nodes register")
	fs.IntVar(&o.BreakerFailures, "breaker-failures", 0, "consecutive failed exchanges that open a node's circuit breaker (0 = default, negative = breakers off)")
	fs.DurationVar(&o.SlowThreshold, "slow-threshold", 0, "exchange latency over which consecutive successful-but-slow polls open the breaker (0 = latency trip off)")
	fs.DurationVar(&o.BreakerOpen, "breaker-open", 0, "open-breaker hold before a single half-open probe (0 = the -retry-max ceiling)")
	fs.DurationVar(&o.HedgeDelay, "hedge-delay", 0, "hedge a cap push over a fresh connection when the shared path stalls this long (0 = no hedging)")
	fs.DurationVar(&o.PollBudget, "poll-budget", 0, "poll sweep duration that arms brownout shedding of low-value work when overrun (0 = no shedding)")
	fs.StringVar(&o.ReplicaAddr, "replica-addr", "", "address to serve the journal replication feed on (HA primary side)")
	fs.StringVar(&o.StandbyOf, "standby-of", "", "primary's replication address; run as hot standby and take over when its lease lapses")
	fs.StringVar(&o.Lease, "lease", "", "shared leadership lease file (default: <state-dir>/"+store.LeaseFileName+")")
	fs.StringVar(&o.HAID, "ha-id", "", "this member's name in the lease (default: the -listen address)")
	fs.DurationVar(&o.LeaseTTL, "lease-ttl", DefaultLeaseTTL, "leadership lease term; a primary that misses renewals this long is deposed")
	fs.IntVar(&o.Shards, "shards", 0, "run a sharded control plane: this many leaf managers own consistent-hash shards under a budget-cascading aggregator (0 = flat)")
	fs.DurationVar(&o.Aggregator, "aggregator", 0, "aggregator budget-cascade interval in sharded mode (0 = cascade only on dcmctl budget pushes; requires -budget)")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	return o, nil
}

// DefaultLeaseTTL is the leadership term: long enough that a busy
// primary never misses three renewal heartbeats, short enough that
// failover is prompt.
const DefaultLeaseTTL = 3 * time.Second

// haEnabled reports whether the options put the daemon in an HA pair.
func (o options) haEnabled() bool { return o.ReplicaAddr != "" || o.StandbyOf != "" }

// leasePath resolves the shared lease location.
func (o options) leasePath() string {
	if o.Lease != "" {
		return o.Lease
	}
	return store.LeasePath(o.StateDir)
}

// haID resolves this member's lease identity.
func (o options) haID() string {
	if o.HAID != "" {
		return o.HAID
	}
	return o.Listen
}

// leaseTTL resolves the lease term.
func (o options) leaseTTL() time.Duration {
	if o.LeaseTTL <= 0 {
		return DefaultLeaseTTL
	}
	return o.LeaseTTL
}

// tune applies the manager knobs every dcmd-built manager shares —
// retry backoff, poll parallelism, staleness, and the gray-failure
// defense — so the primary, the standby placeholder, and a promoted
// standby's rebuilt manager all run the same configuration.
func (o options) tune(mgr *dcm.Manager) {
	mgr.RetryBaseDelay = o.RetryBase
	mgr.RetryMaxDelay = o.RetryMax
	mgr.PollConcurrency = o.PollWorkers
	mgr.StaleAfter = o.StaleAfter
	mgr.Breaker = dcm.BreakerConfig{
		FailureThreshold: o.BreakerFailures,
		SlowThreshold:    o.SlowThreshold,
		OpenTimeout:      o.BreakerOpen,
	}
	mgr.HedgeDelay = o.HedgeDelay
	mgr.PollBudget = o.PollBudget
}

// daemon is a running dcmd instance; tests drive it in-process.
type daemon struct {
	mu    sync.Mutex // guards mgr/replicaSt swaps at promotion and close
	mgr   *dcm.Manager
	srv   *dcm.Server
	reg   *telemetry.Registry
	trace *telemetry.Trace

	ControlAddr string
	MetricsAddr string // empty when disabled
	ReplAddr    string // bound replication-feed address (empty when not serving)

	httpSrv *http.Server
	httpLn  net.Listener

	// HA machinery (nil/zero outside an HA pair). opts/dial/logf are
	// retained so a promoted standby can build its real manager with the
	// same configuration it was started with.
	opts       options
	dial       dcm.Dialer
	logf       func(format string, args ...any)
	haNode     *dcm.HANode
	replSrv    *store.ReplServer
	replClient *store.ReplClient
	rep        *store.Replica
	replicaSt  *store.Store // standby's replicated store; nil once promoted
	hbStop     chan struct{}
	hbWG       sync.WaitGroup
	closed     bool

	// Sharded control plane (nil/empty outside -shards mode): the
	// aggregator tree, its leaf managers, and the budget-cascade loop.
	// mgr is nil in this mode — the tree's HandleControl owns dispatch.
	shTree   *shard.Tree
	shLeaves []*dcm.Manager
	aggStop  chan struct{}
	aggWG    sync.WaitGroup
}

// start builds and launches a daemon from opts. A nil dial uses the
// real IPMI dialer (with wire-level request counters); tests inject
// their own.
func start(opts options, dial dcm.Dialer, logf func(format string, args ...any)) (*daemon, error) {
	if logf == nil {
		logf = log.Printf
	}
	if opts.haEnabled() && opts.StateDir == "" {
		return nil, fmt.Errorf("dcmd: -replica-addr/-standby-of require -state-dir (the journal is what replicates)")
	}
	reg := telemetry.NewRegistry()
	trace := telemetry.NewTrace(telemetry.DefaultTraceCapacity)
	// Register the wire-level series up front so the scrape surface is
	// stable whether or not the default dialer is in use.
	ipmiReqs := reg.Counter("ipmi_requests_total")
	ipmiFails := reg.Counter("ipmi_request_failures_total")
	if dial == nil {
		dial = func(addr string) (dcm.BMC, error) {
			c, err := ipmi.DialTimeout(addr, opts.ConnectTO, opts.RequestTO)
			if err != nil {
				return nil, err
			}
			c.SetCounters(ipmiReqs, ipmiFails)
			return c, nil
		}
	}
	if opts.Shards > 0 {
		return startSharded(opts, dial, logf, reg, trace)
	}
	if opts.StandbyOf != "" {
		return startStandby(opts, dial, logf, reg, trace)
	}

	mgr := dcm.NewManager(dial)
	opts.tune(mgr)
	mgr.SetTelemetry(reg, trace)
	if opts.StateDir != "" {
		if err := mgr.OpenStateDir(opts.StateDir); err != nil {
			mgr.Close()
			return nil, err
		}
		if n := len(mgr.Nodes()); n > 0 {
			logf("dcmd: restored %d node(s) from %s; reconciling caps on the next poll", n, opts.StateDir)
		}
	}
	// After the state dir, so presets reach restored nodes immediately
	// (nodes registering later pick their preset up at AddNode).
	if opts.Tiers != "" {
		if err := applyTiers(mgr, opts.Tiers); err != nil {
			mgr.Close()
			return nil, err
		}
	}

	var node *dcm.HANode
	if opts.haEnabled() {
		// Primary side of an HA pair: take the lease before actuating
		// anything. Losing the race means a live primary already leads —
		// this process was misconfigured (it should be the standby), so
		// refuse to start rather than sit in a role the operator did not
		// ask for.
		node = &dcm.HANode{
			ID:    opts.haID(),
			Lease: store.NewLeaseFile(opts.leasePath()),
			TTL:   opts.leaseTTL(),
			Mgr:   mgr,
		}
		// Re-stamp the store's replication generation at every promotion
		// — first and any later self-lapse re-promotion. The generation
		// combines the fencing epoch with the state dir's open counter
		// (SetGenForEpoch), so even a crash-restart that live-renews the
		// same epoch yields a fresh generation and a standby resuming
		// across any leadership or process boundary renegotiates from a
		// snapshot instead of splicing incarnations.
		node.OnPromote = func(epoch uint64) {
			if st := mgr.Store(); st != nil {
				st.SetGenForEpoch(epoch)
			}
		}
		role, err := node.Start()
		if err != nil {
			mgr.Close()
			return nil, fmt.Errorf("dcmd: lease: %w", err)
		}
		if role != dcm.RolePrimary {
			mgr.Close()
			return nil, fmt.Errorf("dcmd: lease %s is held by another live primary; start this member with -standby-of", opts.leasePath())
		}
		logf("dcmd: primary at epoch %d (lease %s)", mgr.Epoch(), opts.leasePath())
	}
	mgr.StartPolling(opts.Poll)
	switch {
	case opts.Budget > 0 && opts.Group != "":
		names := strings.Split(opts.Group, ",")
		mgr.StartAutoBalance(opts.Budget, names, opts.Rebalance)
		logf("dcmd: auto-balancing %.0f W across %v every %v", opts.Budget, names, opts.Rebalance)
	default:
		// No budget on the command line: re-arm the one the state dir
		// holds, if any — a restart must not silently drop the fleet's
		// power budget.
		if watts, names, interval, ok := mgr.RestoredBudget(); ok {
			mgr.StartAutoBalance(watts, names, interval)
			logf("dcmd: restored auto-balance of %.0f W across %v every %v", watts, names, interval)
		}
	}

	srv := dcm.NewServer(mgr)
	addr, err := srv.Listen(opts.Listen)
	if err != nil {
		mgr.Close()
		return nil, fmt.Errorf("dcmd: listen: %w", err)
	}
	d := &daemon{
		mgr: mgr, srv: srv, reg: reg, trace: trace,
		ControlAddr: addr,
		opts:        opts, dial: dial, logf: logf,
		haNode: node,
	}

	if opts.ReplicaAddr != "" {
		rs := store.NewReplServer(mgr.Store())
		raddr, err := rs.Listen(opts.ReplicaAddr)
		if err != nil {
			d.Close()
			return nil, fmt.Errorf("dcmd: replica listen: %w", err)
		}
		d.replSrv = rs
		d.ReplAddr = raddr
		logf("dcmd: serving replication feed on %s", raddr)
	}
	if node != nil {
		d.startHeartbeat(opts.leaseTTL())
	}

	if err := d.serveMetrics(opts, logf); err != nil {
		d.Close()
		return nil, err
	}
	return d, nil
}

// shardSeed fixes the aggregator's ring seed: determinism across
// restarts comes from the snapshot, and a fresh ring only needs every
// member to agree — there is nothing to randomise.
const shardSeed = 1

// leafName names the i'th leaf manager of a sharded daemon. %02d keeps
// lexical order equal to index order, which the snapshot-restore leaf
// check relies on (hence the 99-leaf cap in startSharded).
func leafName(i int) string { return fmt.Sprintf("leaf-%02d", i) }

// startSharded brings dcmd up as a two-level control plane (DESIGN
// §13): -shards leaf managers each own a consistent-hash shard of the
// fleet, an aggregator tree routes control-plane ops to owners and
// cascades the -budget across the leaves, and -state-dir journals both
// the per-leaf registries (leaf-NN/) and the shard map (shardmap.snap)
// so a restarted daemon resumes ownership exactly where it left off.
func startSharded(opts options, dial dcm.Dialer, logf func(format string, args ...any), reg *telemetry.Registry, trace *telemetry.Trace) (*daemon, error) {
	switch {
	case opts.haEnabled():
		return nil, fmt.Errorf("dcmd: -shards is incompatible with -replica-addr/-standby-of (the sharded tree is its own availability story)")
	case opts.Group != "":
		return nil, fmt.Errorf("dcmd: -group has no meaning under -shards (the budget group is the whole tree)")
	case opts.Aggregator > 0 && opts.Budget <= 0:
		return nil, fmt.Errorf("dcmd: -aggregator needs -budget (the cascade divides the datacenter budget)")
	case opts.Shards > 99:
		return nil, fmt.Errorf("dcmd: -shards %d: at most 99 leaves", opts.Shards)
	}

	mgrs := make([]*dcm.Manager, opts.Shards)
	closeAll := func() {
		for _, m := range mgrs {
			if m != nil {
				m.Close()
			}
		}
	}
	for i := range mgrs {
		mgr := dcm.NewManager(dial)
		opts.tune(mgr)
		mgr.SetTelemetry(reg, trace)
		if opts.StateDir != "" {
			if err := mgr.OpenStateDir(filepath.Join(opts.StateDir, leafName(i))); err != nil {
				closeAll()
				return nil, err
			}
		}
		if opts.Tiers != "" {
			// Every leaf holds every preset; only the owner's copy is
			// consulted when the node registers.
			if err := applyTiers(mgr, opts.Tiers); err != nil {
				closeAll()
				return nil, err
			}
		}
		mgrs[i] = mgr
	}

	tree, err := buildTree(opts, mgrs, logf)
	if err != nil {
		closeAll()
		return nil, err
	}
	for _, mgr := range mgrs {
		mgr.StartPolling(opts.Poll)
	}

	srv := dcm.NewServer(nil)
	srv.SetHandler(tree.HandleControl)
	addr, err := srv.Listen(opts.Listen)
	if err != nil {
		closeAll()
		return nil, fmt.Errorf("dcmd: listen: %w", err)
	}
	d := &daemon{
		srv: srv, reg: reg, trace: trace,
		ControlAddr: addr,
		opts:        opts, dial: dial, logf: logf,
		shTree: tree, shLeaves: mgrs,
	}
	if opts.Aggregator > 0 {
		d.startAggregator(opts.Budget, opts.Aggregator)
		logf("dcmd: cascading %.0f W across %d leaves every %v", opts.Budget, opts.Shards, opts.Aggregator)
	}
	if err := d.serveMetrics(opts, logf); err != nil {
		d.Close()
		return nil, err
	}
	logf("dcmd: aggregator over %d leaf shard(s) at epoch %d", opts.Shards, tree.Epoch())
	return d, nil
}

// buildTree restores the aggregator from the journaled shard map when
// one is present and names the same leaves, and otherwise builds a
// fresh ring — re-registering through it any nodes the leaf journals
// carried, so a daemon that lost only shardmap.snap still comes back
// owning its fleet.
func buildTree(opts options, mgrs []*dcm.Manager, logf func(format string, args ...any)) (*shard.Tree, error) {
	var snapPath string
	if opts.StateDir != "" {
		snapPath = shard.SnapshotPathIn(opts.StateDir)
		if st, err := shard.LoadSnapshot(snapPath); err == nil {
			t, rerr := restoreTree(st, snapPath, mgrs, logf)
			if rerr == nil {
				logf("dcmd: restored shard map: %d node(s) across %d leaves at epoch %d", len(st.Nodes), len(st.Leaves), t.Epoch())
				return t, nil
			}
			logf("dcmd: shard map %s not restorable (%v); rebuilding the ring", snapPath, rerr)
		} else if !errors.Is(err, fs.ErrNotExist) {
			logf("dcmd: shard map %s unreadable (%v); rebuilding the ring", snapPath, err)
		}
	}

	t := shard.NewTree(shardSeed, 0, nil, snapPath)
	// Collect whatever the leaf journals restored before joining the
	// leaves: ownership must come from the fresh ring, not from which
	// journal happened to hold the node.
	var orphans []shard.NodeInfo
	for i, mgr := range mgrs {
		for _, st := range mgr.Nodes() {
			orphans = append(orphans, shard.NodeInfo{Name: st.Name, Addr: st.Addr, ID: shard.NodeID(st.Name)})
			_ = mgr.RemoveNode(st.Name)
		}
		if _, err := t.AddLeaf(leafName(i), mgr); err != nil {
			return nil, err
		}
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i].Name < orphans[j].Name })
	for _, n := range orphans {
		// Per-node, tolerating failures: a node that is down right now
		// re-registers when the operator re-adds it.
		if err := t.AddNode(n.Name, n.Addr, n.ID); err != nil {
			logf("dcmd: re-registering journaled node %s: %v", n.Name, err)
		}
	}
	return t, nil
}

// restoreTree rebuilds the aggregator from a decoded shard map and
// re-binds this process's leaf managers to it.
func restoreTree(st shard.TreeState, snapPath string, mgrs []*dcm.Manager, logf func(format string, args ...any)) (*shard.Tree, error) {
	if len(st.Leaves) != len(mgrs) {
		return nil, fmt.Errorf("snapshot has %d leaves, -shards is %d", len(st.Leaves), len(mgrs))
	}
	for i, l := range st.Leaves {
		if l.Name != leafName(i) {
			return nil, fmt.Errorf("snapshot leaf %q is not %s", l.Name, leafName(i))
		}
	}
	t, err := shard.NewTreeFromState(st, nil, snapPath)
	if err != nil {
		return nil, err
	}
	known := make(map[string]map[string]bool, len(mgrs))
	for i, mgr := range mgrs {
		if err := t.Attach(leafName(i), mgr); err != nil {
			// Attach reconciles map-owned nodes into the manager and
			// reports per-node registration failures while the attachment
			// itself stands; only a failed bind aborts the restore.
			if t.Leaf(leafName(i)) == nil {
				return nil, err
			}
			logf("dcmd: reconciling leaf %s on attach: %v", leafName(i), err)
		}
		set := make(map[string]bool)
		for _, ns := range mgr.Nodes() {
			set[ns.Name] = true
		}
		known[leafName(i)] = set
	}
	// The shard map and the leaf journals commit independently, so a
	// crash can wedge them apart. Map-owned nodes a leaf journal lost
	// re-register with their recorded owner; journal-only nodes the map
	// never heard of re-route through the ring under fresh ownership.
	for _, n := range st.Nodes {
		if known[n.Owner][n.Name] {
			continue
		}
		if mgr := t.Leaf(n.Owner); mgr != nil {
			if err := mgr.AddNode(n.Name, n.Addr); err != nil {
				logf("dcmd: reconciling shard-map node %s onto %s: %v", n.Name, n.Owner, err)
			}
		}
	}
	for i, mgr := range mgrs {
		for _, ns := range mgr.Nodes() {
			if _, owned := t.Owner(ns.Name); owned {
				continue
			}
			_ = mgr.RemoveNode(ns.Name)
			if err := t.AddNode(ns.Name, ns.Addr, shard.NodeID(ns.Name)); err != nil {
				logf("dcmd: adopting journal-only node %s from %s: %v", ns.Name, leafName(i), err)
			}
		}
	}
	return t, nil
}

// startAggregator runs the budget cascade on its interval. Each pass
// re-divides the datacenter budget from the leaves' latest demand
// summaries, so caps follow load between dcmctl interventions.
func (d *daemon) startAggregator(budget float64, every time.Duration) {
	stop := make(chan struct{})
	d.aggStop = stop
	d.aggWG.Add(1)
	go func() {
		defer d.aggWG.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
			}
			if _, err := d.shTree.Rebalance(budget); err != nil {
				d.logf("dcmd: budget cascade: %v", err)
			}
		}
	}()
}

// startStandby brings the daemon up as the hot-standby member of an HA
// pair: it opens its own state dir as a replica of the primary's
// journal, pulls the feed over TCP, and serves only read-side ops
// ("leader", "nodes", "trace") until the primary's lease lapses — at
// which point promote builds the real manager from the replicated
// state and takes over the fleet.
func startStandby(opts options, dial dcm.Dialer, logf func(format string, args ...any), reg *telemetry.Registry, trace *telemetry.Trace) (*daemon, error) {
	st, err := store.Open(opts.StateDir)
	if err != nil {
		return nil, fmt.Errorf("dcmd: opening replica state dir: %w", err)
	}
	// Recover the persisted resume point, if any: a restarted standby
	// picks replication back up at its cursor, and its non-zero
	// generation marks it synced enough to contend for the lease even
	// when the primary never comes back.
	rep := store.RecoverReplica(st, opts.StateDir)
	if g, c := rep.Gen(), rep.Cursor(); g != 0 {
		logf("dcmd: standby resuming replication at gen %d cursor %d", g, c)
	}
	rc := store.NewReplClient(opts.StandbyOf, rep)

	// A placeholder manager serves the control plane while standing by:
	// it knows no nodes and refuses every mutation (RoleStandby), but
	// answers "leader" so operators can see who to talk to.
	mgr := dcm.NewManager(dial)
	opts.tune(mgr)
	mgr.SetTelemetry(reg, trace)
	mgr.SetFencing(dcm.RoleStandby, 0)

	srv := dcm.NewServer(mgr)
	addr, err := srv.Listen(opts.Listen)
	if err != nil {
		mgr.Close()
		st.Close()
		return nil, fmt.Errorf("dcmd: listen: %w", err)
	}
	d := &daemon{
		mgr: mgr, srv: srv, reg: reg, trace: trace,
		ControlAddr: addr,
		opts:        opts, dial: dial, logf: logf,
		replClient: rc, rep: rep, replicaSt: st,
	}
	d.haNode = &dcm.HANode{
		ID:        opts.haID(),
		Lease:     store.NewLeaseFile(opts.leasePath()),
		TTL:       opts.leaseTTL(),
		Mgr:       mgr,
		OnPromote: d.promote,
	}
	rc.Start()
	d.startHeartbeat(opts.leaseTTL())
	logf("dcmd: standby of %s (lease %s); replicating into %s", opts.StandbyOf, opts.leasePath(), opts.StateDir)

	if err := d.serveMetrics(opts, logf); err != nil {
		d.Close()
		return nil, err
	}
	return d, nil
}

// promote is the standby's OnPromote hook (called from the heartbeat
// goroutine once HANode has taken the lease and fenced the placeholder
// manager). It seals the replicated journal, rebuilds a real manager
// over it, re-announces the new epoch to every node, re-arms the
// journaled budget, and swaps it into the control plane.
func (d *daemon) promote(epoch uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.replicaSt == nil || d.closed {
		// Already promoted (a later self-lapse re-promotion needs no
		// rebuild — HANode re-fenced and re-announced the real manager),
		// or shutting down.
		if d.mgr != nil {
			if st := d.mgr.Store(); st != nil {
				st.SetGenForEpoch(epoch)
			}
		}
		return
	}
	d.replClient.Stop()
	st := d.replicaSt
	d.replicaSt = nil
	st.Close() // compacts: the state dir reopens from one clean snapshot
	// Drop the replication resume claim: from here the dir journals this
	// member's own records, and resuming the old claim into a later
	// standby lifetime could splice that history into a session.
	if err := store.ClearReplicaMeta(d.opts.StateDir); err != nil {
		d.logf("dcmd: promotion: clearing replica resume point: %v", err)
	}

	real := dcm.NewManager(d.dial)
	d.opts.tune(real)
	real.SetTelemetry(d.reg, d.trace)
	if err := real.OpenStateDir(d.opts.StateDir); err != nil {
		// The replicated journal would not reopen: stay a fenced
		// placeholder rather than lead with no state. The lease is held,
		// so the fleet is headless until an operator intervenes — but
		// caps keep being enforced by the nodes themselves.
		d.logf("dcmd: promotion at epoch %d failed reopening %s: %v", epoch, d.opts.StateDir, err)
		real.Close()
		return
	}
	real.SetFencing(dcm.RolePrimary, epoch)
	real.Store().SetGenForEpoch(epoch)
	if err := real.AnnounceEpoch(); err != nil {
		// Unreachable nodes miss the announce now; reconciliation
		// re-pushes (and thereby fences) them as they return.
		d.logf("dcmd: promotion: announcing epoch %d: %v", epoch, err)
	}
	if watts, names, interval, ok := real.RestoredBudget(); ok {
		real.StartAutoBalance(watts, names, interval)
		d.logf("dcmd: re-armed auto-balance of %.0f W across %v every %v", watts, names, interval)
	}
	real.StartPolling(d.opts.Poll)

	placeholder := d.mgr
	d.mgr = real
	d.haNode.Mgr = real
	d.srv.SetManager(real)
	placeholder.Close()

	if d.opts.ReplicaAddr != "" {
		rs := store.NewReplServer(real.Store())
		if raddr, err := rs.Listen(d.opts.ReplicaAddr); err != nil {
			d.logf("dcmd: promotion: replica listen: %v", err)
		} else {
			d.replSrv = rs
			d.ReplAddr = raddr
		}
	}
	d.logf("dcmd: promoted to primary at epoch %d", epoch)
}

// startHeartbeat drives the lease state machine at a cadence that
// leaves a healthy primary two spare renewals per term.
func (d *daemon) startHeartbeat(ttl time.Duration) {
	tick := ttl / 3
	if tick <= 0 {
		tick = time.Millisecond
	}
	stop := make(chan struct{})
	d.hbStop = stop
	d.hbWG.Add(1)
	go func() {
		defer d.hbWG.Done()
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
			}
			// A never-synced standby must not seize the lease: promoting
			// before the first snapshot frame lands would lead an empty
			// fleet while the real one runs headless. A restarted standby
			// that recovered its replicated journal carries a non-zero
			// generation (store.RecoverReplica) and so still contends —
			// its local state is the fleet's best surviving copy.
			if d.rep != nil && d.haNode.Mgr.Role() == dcm.RoleStandby && d.rep.Gen() == 0 {
				continue
			}
			changed, err := d.haNode.Tick()
			if err != nil {
				d.logf("dcmd: lease: %v", err)
			}
			if changed {
				m := d.haNode.Mgr
				d.logf("dcmd: now %s at epoch %d", m.Role(), m.Epoch())
			}
		}
	}()
}

// serveMetrics starts the optional /metrics + /trace HTTP listener.
func (d *daemon) serveMetrics(opts options, logf func(format string, args ...any)) error {
	if opts.MetricsAddr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", opts.MetricsAddr)
	if err != nil {
		return fmt.Errorf("dcmd: metrics listen: %w", err)
	}
	d.httpLn = ln
	d.MetricsAddr = ln.Addr().String()
	d.httpSrv = &http.Server{Handler: telemetry.Handler(d.reg, d.trace)}
	go d.httpSrv.Serve(ln)
	logf("dcmd: metrics on http://%s/metrics, trace on /trace", d.MetricsAddr)
	return nil
}

// applyTiers parses the -tiers flag ("NAME=high,NAME2=low") into tier
// presets honoured as each named node registers.
func applyTiers(mgr *dcm.Manager, spec string) error {
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, tierStr, ok := strings.Cut(pair, "=")
		if !ok || name == "" {
			return fmt.Errorf("dcmd: bad -tiers entry %q (want NAME=high|low)", pair)
		}
		tier, err := dcm.ParseTier(tierStr)
		if err != nil {
			return fmt.Errorf("dcmd: bad -tiers entry %q: %w", pair, err)
		}
		if err := mgr.PresetNodeTier(name, tier); err != nil {
			return err
		}
	}
	return nil
}

// Shutdown drains the daemon gracefully: the lease heartbeat stops,
// the lease is released so the peer can take over without waiting out
// the TTL, replication winds down, and Close compacts the journal into
// one clean snapshot (Manager.Close → Store.Close).
func (d *daemon) Shutdown() {
	if d.hbStop != nil {
		close(d.hbStop)
		d.hbWG.Wait()
		d.hbStop = nil
	}
	if d.haNode != nil {
		if err := d.haNode.StepDown(); err != nil {
			d.logf("dcmd: releasing lease: %v", err)
		}
	}
	d.Close()
}

// Close tears the daemon down (HTTP and replication first, then the
// control plane, then the manager and its pollers). Idempotent, and
// safe on a daemon that never finished starting. Unlike Shutdown it
// does not touch the lease: a SIGKILL'd or crashed primary leaves its
// lease to expire, and Close models every non-graceful path.
func (d *daemon) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	mgr, replSrv, replicaSt := d.mgr, d.replSrv, d.replicaSt
	d.replicaSt = nil
	d.mu.Unlock()

	if d.hbStop != nil {
		close(d.hbStop)
		d.hbWG.Wait()
		d.hbStop = nil
	}
	if d.aggStop != nil {
		close(d.aggStop)
		d.aggWG.Wait()
		d.aggStop = nil
	}
	if d.replClient != nil {
		d.replClient.Stop()
	}
	if d.httpSrv != nil {
		d.httpSrv.Close()
	}
	if replSrv != nil {
		replSrv.Close()
	}
	if d.srv != nil {
		d.srv.Close()
	}
	if mgr != nil {
		mgr.Close()
	}
	for _, m := range d.shLeaves {
		m.Close()
	}
	if replicaSt != nil {
		replicaSt.Close()
	}
}

func main() {
	opts, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		os.Exit(2)
	}
	d, err := start(opts, nil, nil)
	if err != nil {
		log.Fatalf("%v", err)
	}
	log.Printf("dcmd: control plane on %s, polling every %v", d.ControlAddr, opts.Poll)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	signal.Stop(sig)
	log.Printf("dcmd: %v: draining, compacting journal and releasing lease", s)
	d.Shutdown()
}
