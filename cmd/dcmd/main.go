// Command dcmd runs the Data Center Manager: it maintains IPMI
// connections to a fleet of simulated nodes (see cmd/nodesimd),
// monitors their power, and exposes the JSON control plane that
// cmd/dcmctl drives.
//
// Usage:
//
//	dcmd -listen 127.0.0.1:9650 -poll 1s
//
// With -state-dir the registry, desired caps and any group budget are
// journaled crash-safely; a restarted dcmd reloads them and reconciles
// every node's live policy back to the desired state within one poll.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"nodecap/internal/dcm"
	"nodecap/internal/ipmi"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9650", "control-plane address")
	poll := flag.Duration("poll", time.Second, "monitoring poll interval")
	budget := flag.Float64("budget", 0, "group power budget in watts (0 = no auto-balancing)")
	group := flag.String("group", "", "comma-separated node names the budget covers")
	rebalance := flag.Duration("rebalance", 5*time.Second, "auto-balance interval")
	connectTO := flag.Duration("connect-timeout", ipmi.DefaultConnectTimeout, "BMC TCP connect timeout")
	requestTO := flag.Duration("request-timeout", ipmi.DefaultRequestTimeout, "per-exchange BMC request timeout")
	retryBase := flag.Duration("retry-base", dcm.DefaultRetryBaseDelay, "initial redial backoff for a failed node")
	retryMax := flag.Duration("retry-max", dcm.DefaultRetryMaxDelay, "backoff ceiling for a failed node")
	pollWorkers := flag.Int("poll-workers", dcm.DefaultPollConcurrency, "max nodes sampled in parallel per sweep")
	stateDir := flag.String("state-dir", "", "durable state directory: registry, caps and budget survive restarts")
	staleAfter := flag.Duration("stale-after", dcm.DefaultStaleAfter, "age after which an unreachable node's demand stops counting in budgets")
	flag.Parse()

	mgr := dcm.NewManager(func(addr string) (dcm.BMC, error) {
		return ipmi.DialTimeout(addr, *connectTO, *requestTO)
	})
	mgr.RetryBaseDelay = *retryBase
	mgr.RetryMaxDelay = *retryMax
	mgr.PollConcurrency = *pollWorkers
	mgr.StaleAfter = *staleAfter
	defer mgr.Close()
	if *stateDir != "" {
		if err := mgr.OpenStateDir(*stateDir); err != nil {
			log.Fatalf("dcmd: %v", err)
		}
		if n := len(mgr.Nodes()); n > 0 {
			log.Printf("dcmd: restored %d node(s) from %s; reconciling caps on the next poll", n, *stateDir)
		}
	}
	mgr.StartPolling(*poll)
	switch {
	case *budget > 0 && *group != "":
		names := strings.Split(*group, ",")
		mgr.StartAutoBalance(*budget, names, *rebalance)
		log.Printf("dcmd: auto-balancing %.0f W across %v every %v", *budget, names, *rebalance)
	default:
		// No budget on the command line: re-arm the one the state dir
		// holds, if any — a restart must not silently drop the fleet's
		// power budget.
		if watts, names, interval, ok := mgr.RestoredBudget(); ok {
			mgr.StartAutoBalance(watts, names, interval)
			log.Printf("dcmd: restored auto-balance of %.0f W across %v every %v", watts, names, interval)
		}
	}

	srv := dcm.NewServer(mgr)
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("dcmd: listen: %v", err)
	}
	defer srv.Close()
	log.Printf("dcmd: control plane on %s, polling every %v", addr, *poll)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("dcmd: shutting down")
}
