package main

import (
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"nodecap/internal/dcm"
	"nodecap/internal/dcm/store"
	"nodecap/internal/ipmi"
	"nodecap/internal/machine"
	"nodecap/internal/nodeagent"
)

// haTTL is short enough that failover tests finish quickly but leaves
// the renewal heartbeat (TTL/3) plenty of margin on a loaded CI box.
const haTTL = 400 * time.Millisecond

// simNode stands up one simulated node and returns its BMC address.
func simNode(t *testing.T) string {
	t.Helper()
	agent := nodeagent.New(machine.Romley(), nodeagent.Options{})
	t.Cleanup(agent.Stop)
	srv := ipmi.NewServer(agent)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

func haDial(a string) (dcm.BMC, error) {
	return ipmi.DialTimeout(a, time.Second, time.Second)
}

func silentLog(string, ...any) {}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestParseFlagsHA(t *testing.T) {
	o, err := parseFlags([]string{
		"-state-dir", "/tmp/x",
		"-standby-of", "127.0.0.1:9660",
		"-replica-addr", "127.0.0.1:9661",
		"-lease", "/shared/l.json",
		"-ha-id", "b",
		"-lease-ttl", "2s",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.StandbyOf != "127.0.0.1:9660" || o.ReplicaAddr != "127.0.0.1:9661" ||
		o.Lease != "/shared/l.json" || o.HAID != "b" || o.LeaseTTL != 2*time.Second {
		t.Errorf("HA flags: %+v", o)
	}
	if !o.haEnabled() {
		t.Error("haEnabled false with both HA flags set")
	}
	if o.leasePath() != "/shared/l.json" || o.haID() != "b" {
		t.Errorf("resolved lease=%q id=%q", o.leasePath(), o.haID())
	}

	o, err = parseFlags([]string{"-state-dir", "/tmp/x", "-listen", "127.0.0.1:7"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if o.haEnabled() {
		t.Error("haEnabled true without HA flags")
	}
	if o.leasePath() != store.LeasePath("/tmp/x") || o.haID() != "127.0.0.1:7" {
		t.Errorf("defaults: lease=%q id=%q", o.leasePath(), o.haID())
	}
}

// TestHARequiresStateDir: an HA member without a journal has nothing
// to replicate or recover; start must refuse it.
func TestHARequiresStateDir(t *testing.T) {
	_, err := start(options{Listen: "127.0.0.1:0", Poll: time.Hour, ReplicaAddr: "127.0.0.1:0"}, haDial, silentLog)
	if err == nil {
		t.Fatal("-replica-addr accepted without -state-dir")
	}
	_, err = start(options{Listen: "127.0.0.1:0", Poll: time.Hour, StandbyOf: "127.0.0.1:1"}, haDial, silentLog)
	if err == nil {
		t.Fatal("-standby-of accepted without -state-dir")
	}
}

// startPrimary brings up the primary half of an HA pair.
func startPrimary(t *testing.T, stateDir, lease, id string) *daemon {
	t.Helper()
	d, err := start(options{
		Listen: "127.0.0.1:0", Poll: time.Hour,
		RetryBase: time.Nanosecond, RetryMax: time.Nanosecond,
		StaleAfter: dcm.DefaultStaleAfter, PollWorkers: 2,
		StateDir: stateDir, ReplicaAddr: "127.0.0.1:0",
		Lease: lease, HAID: id, LeaseTTL: haTTL,
	}, haDial, silentLog)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// startStandbyOf brings up a standby pulling from replAddr.
func startStandbyOf(t *testing.T, stateDir, lease, id, replAddr string) *daemon {
	t.Helper()
	d, err := start(options{
		Listen: "127.0.0.1:0", Poll: time.Hour,
		RetryBase: time.Nanosecond, RetryMax: time.Nanosecond,
		StaleAfter: dcm.DefaultStaleAfter, PollWorkers: 2,
		StateDir: stateDir, StandbyOf: replAddr, ReplicaAddr: "127.0.0.1:0",
		Lease: lease, HAID: id, LeaseTTL: haTTL,
	}, haDial, silentLog)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// TestHAFailover is the end-to-end pair: the primary registers a node
// and caps it, the standby replicates, the primary dies without
// releasing its lease, and the standby must take over — epoch bumped,
// node and cap restored from the replicated journal, and new
// mutations served.
func TestHAFailover(t *testing.T) {
	nodeAddr := simNode(t)
	lease := filepath.Join(t.TempDir(), "lease.json")

	p := startPrimary(t, t.TempDir(), lease, "a")
	if resp := p.srv.Handle(dcm.Request{Op: "add", Name: "sim0", Addr: nodeAddr}); resp.Error != "" {
		t.Fatalf("add: %s", resp.Error)
	}
	if resp := p.srv.Handle(dcm.Request{Op: "setcap", Name: "sim0", Cap: 145}); resp.Error != "" {
		t.Fatalf("setcap: %s", resp.Error)
	}
	if got := p.srv.Handle(dcm.Request{Op: "leader"}); got.Role != string(dcm.RolePrimary) || got.Epoch != 1 {
		t.Fatalf("leader: role=%q epoch=%d, want primary/1", got.Role, got.Epoch)
	}

	s := startStandbyOf(t, t.TempDir(), lease, "b", p.ReplAddr)
	if got := s.srv.Handle(dcm.Request{Op: "leader"}); got.Role != string(dcm.RoleStandby) {
		t.Fatalf("standby leader op: role=%q", got.Role)
	}
	if resp := s.srv.Handle(dcm.Request{Op: "setcap", Name: "sim0", Cap: 130}); resp.Error == "" {
		t.Fatal("standby accepted a mutation")
	}
	waitFor(t, 5*time.Second, "replica sync", func() bool { return s.rep.Gen() != 0 && s.rep.Cursor() >= 2 })

	// Hard-kill the primary: no StepDown, the lease must expire on its
	// own before the standby may promote.
	p.Close()
	// Promotion is visible in two steps: the placeholder is fenced
	// primary first, then the manager rebuilt from the replicated
	// journal is swapped in — wait for the restored fleet, not just the
	// role flip.
	waitFor(t, 10*time.Second, "standby promotion", func() bool {
		m := s.srv.Manager()
		return m.Role() == dcm.RolePrimary && len(m.Nodes()) == 1
	})

	got := s.srv.Handle(dcm.Request{Op: "leader"})
	if got.Role != string(dcm.RolePrimary) || got.Epoch != 2 {
		t.Fatalf("promoted leader: role=%q epoch=%d, want primary/2", got.Role, got.Epoch)
	}
	nodes := s.srv.Handle(dcm.Request{Op: "nodes"})
	if len(nodes.Nodes) != 1 || nodes.Nodes[0].Name != "sim0" {
		t.Fatalf("restored nodes: %+v", nodes.Nodes)
	}
	if n := nodes.Nodes[0]; !n.CapEnabled || n.CapWatts != 145 {
		t.Fatalf("replicated cap lost: %+v", n)
	}
	// The new primary serves mutations and reaches the plant.
	if resp := s.srv.Handle(dcm.Request{Op: "setcap", Name: "sim0", Cap: 160}); resp.Error != "" {
		t.Fatalf("post-failover setcap: %s", resp.Error)
	}
	// And it serves its own replication feed for the next standby.
	if s.ReplAddr == "" {
		t.Fatal("promoted standby serves no replication feed")
	}
}

// TestHAGracefulHandover (S3): SIGTERM-path shutdown releases the
// lease and compacts the journal, so a peer takes over instantly —
// no TTL wait — and reopens the state dir from one clean snapshot.
func TestHAGracefulHandover(t *testing.T) {
	nodeAddr := simNode(t)
	lease := filepath.Join(t.TempDir(), "lease.json")
	dirA := t.TempDir()

	p := startPrimary(t, dirA, lease, "a")
	if resp := p.srv.Handle(dcm.Request{Op: "add", Name: "sim0", Addr: nodeAddr}); resp.Error != "" {
		t.Fatalf("add: %s", resp.Error)
	}
	if resp := p.srv.Handle(dcm.Request{Op: "setcap", Name: "sim0", Cap: 150}); resp.Error != "" {
		t.Fatalf("setcap: %s", resp.Error)
	}
	s := startStandbyOf(t, t.TempDir(), lease, "b", p.ReplAddr)
	waitFor(t, 5*time.Second, "replica sync", func() bool { return s.rep.Gen() != 0 && s.rep.Cursor() >= 2 })

	start := time.Now()
	p.Shutdown()

	// Drained: the journal is compacted into the snapshot.
	if j, err := os.Stat(store.JournalPath(dirA)); err != nil {
		t.Fatalf("journal after shutdown: %v", err)
	} else if j.Size() != 0 {
		t.Errorf("journal not compacted: %d bytes after graceful shutdown", j.Size())
	}
	if _, err := os.Stat(store.SnapshotPath(dirA)); err != nil {
		t.Errorf("no snapshot after graceful shutdown: %v", err)
	}

	// Released: the lease is claimable immediately. The standby's
	// heartbeat may have seized it already — that IS the fast handover
	// — so accept either an expired lease or one the peer now holds.
	l, ok, err := store.NewLeaseFile(lease).Read()
	if err != nil || !ok {
		t.Fatalf("lease after shutdown: %v ok=%v", err, ok)
	}
	if !l.Expired(time.Now()) && l.Holder != "b" {
		t.Errorf("lease neither released nor taken over: held by %q until %d", l.Holder, l.ExpiresNS)
	}

	// The peer takes over well inside the TTL it would otherwise wait.
	waitFor(t, 10*time.Second, "handover", func() bool {
		m := s.srv.Manager()
		return m.Role() == dcm.RolePrimary && len(m.Nodes()) == 1
	})
	if elapsed := time.Since(start); elapsed > 8*time.Second {
		t.Errorf("handover took %v", elapsed)
	}
	if got := s.srv.Handle(dcm.Request{Op: "leader"}); got.Epoch != 2 {
		t.Errorf("handover epoch %d, want 2", got.Epoch)
	}
}

// TestHAStandbyRestartPromotesWithoutPrimary: the primary dies for
// good and the standby process restarts. The restarted standby must
// recover its replication resume point from its state dir and still
// take over — a fresh gen-0 replica would wait forever for a frame
// from the dead primary, leaving the fleet headless despite holding a
// valid replicated copy of its state.
func TestHAStandbyRestartPromotesWithoutPrimary(t *testing.T) {
	nodeAddr := simNode(t)
	lease := filepath.Join(t.TempDir(), "lease.json")

	p := startPrimary(t, t.TempDir(), lease, "a")
	if resp := p.srv.Handle(dcm.Request{Op: "add", Name: "sim0", Addr: nodeAddr}); resp.Error != "" {
		t.Fatalf("add: %s", resp.Error)
	}
	if resp := p.srv.Handle(dcm.Request{Op: "setcap", Name: "sim0", Cap: 145}); resp.Error != "" {
		t.Fatalf("setcap: %s", resp.Error)
	}
	sbyDir := t.TempDir()
	s := startStandbyOf(t, sbyDir, lease, "b", p.ReplAddr)
	waitFor(t, 5*time.Second, "replica sync", func() bool { return s.rep.Gen() != 0 && s.rep.Cursor() >= 2 })

	// The standby process dies first, then the primary — which never
	// releases its lease. Only the standby comes back.
	s.Close()
	p.Close()
	s2 := startStandbyOf(t, sbyDir, lease, "b", p.ReplAddr)
	if g := s2.rep.Gen(); g == 0 {
		t.Fatal("restarted standby recovered no resume point; it can never promote")
	}
	waitFor(t, 10*time.Second, "restarted standby promotion", func() bool {
		m := s2.srv.Manager()
		return m.Role() == dcm.RolePrimary && len(m.Nodes()) == 1
	})
	got := s2.srv.Handle(dcm.Request{Op: "leader"})
	if got.Role != string(dcm.RolePrimary) || got.Epoch != 2 {
		t.Fatalf("promoted leader: role=%q epoch=%d, want primary/2", got.Role, got.Epoch)
	}
	nodes := s2.srv.Handle(dcm.Request{Op: "nodes"})
	if len(nodes.Nodes) != 1 || nodes.Nodes[0].Name != "sim0" {
		t.Fatalf("restored nodes: %+v", nodes.Nodes)
	}
	if n := nodes.Nodes[0]; !n.CapEnabled || n.CapWatts != 145 {
		t.Fatalf("replicated cap lost across standby restart: %+v", n)
	}
}

// TestHASecondPrimaryRefused: a second member configured as primary
// (not -standby-of) against a live lease must refuse to start instead
// of fighting for the fleet.
func TestHASecondPrimaryRefused(t *testing.T) {
	lease := filepath.Join(t.TempDir(), "lease.json")
	p := startPrimary(t, t.TempDir(), lease, "a")
	defer p.Close()

	_, err := start(options{
		Listen: "127.0.0.1:0", Poll: time.Hour,
		StateDir: t.TempDir(), ReplicaAddr: "127.0.0.1:0",
		Lease: lease, HAID: "b", LeaseTTL: haTTL,
	}, haDial, silentLog)
	if err == nil {
		t.Fatal("second primary started against a live lease")
	}
}
