// Command amenability runs the application-characterization
// methodology of internal/amenability — the paper's chief future-work
// item — against the study's two applications: calibrate the platform
// once, profile each application with three short runs, and print the
// predicted slowdown per cap plus the lowest acceptable cap.
//
//	amenability                  # both applications, default tolerance
//	amenability -tolerable 1.25  # tighter deadline
package main

import (
	"flag"
	"fmt"

	"nodecap/internal/amenability"
	"nodecap/internal/core"
	"nodecap/internal/machine"
	"nodecap/internal/workloads/sar"
	"nodecap/internal/workloads/stereo"
)

func main() {
	tolerable := flag.Float64("tolerable", 1.4, "tolerable time-to-solution factor")
	parallel := flag.Int("parallel", 0, "worker pool size for calibration and profiling runs (0 = one per CPU, 1 = sequential)")
	flag.Parse()

	cfg := machine.Romley()
	caps := core.PaperCaps()

	fmt.Println("calibrating platform (cap -> operating point)...")
	cal := amenability.Calibrate(cfg, caps, *parallel)
	fmt.Printf("%8s %10s %12s\n", "cap(W)", "freq(MHz)", "gating level")
	for _, p := range cal.Points {
		fmt.Printf("%8.0f %10.0f %12d\n", p.CapWatts, p.FreqMHz, p.GatingLevel)
	}

	apps := []struct {
		name string
		mk   func() machine.Workload
	}{
		{"SIRE/RSM", func() machine.Workload {
			c := sar.DefaultConfig()
			c.RSMIterations = 1
			return sar.New(c)
		}},
		{"Stereo Matching", func() machine.Workload {
			c := stereo.DefaultConfig()
			c.Sweeps = 1
			return stereo.New(c)
		}},
	}

	for _, app := range apps {
		fmt.Printf("\nprofiling %s (baseline + two forced-gating runs)...\n", app.name)
		prof := amenability.ProfileApp(app.name, app.mk, cfg, *parallel)
		fmt.Printf("  busy %.0f%%, memory-stall %.0f%%; way-gating x%.2f, deep-gating x%.1f\n",
			prof.BusyFraction*100, prof.MemStallFraction*100,
			prof.WayGatingRatio, prof.DeepGatingRatio)
		fmt.Printf("  %8s %20s\n", "cap(W)", "predicted slowdown")
		for _, p := range cal.Points {
			s, err := prof.PredictSlowdown(cal, p.CapWatts)
			if err != nil {
				continue
			}
			fmt.Printf("  %8.0f %19.2fx\n", p.CapWatts, s)
		}
		if cap, ok := prof.AmenableCap(cal, *tolerable); ok {
			fmt.Printf("  => amenable down to %.0f W at <= %.2fx\n", cap, *tolerable)
		} else {
			fmt.Printf("  => no calibrated cap keeps slowdown <= %.2fx\n", *tolerable)
		}
	}
}
