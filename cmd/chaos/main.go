// Command chaos runs one deterministic chaos scenario against a
// simulated DCM-managed fleet and prints a JSON verdict. The same
// seed always replays the same event schedule; in-process runs (the
// default) also produce bit-identical verdicts, so a CI failure is
// reproducible from nothing but the command line that found it.
//
//	chaos -scenario mixed -seed 7 -nodes 6 -ticks 1500
//	chaos -list
//
// Exit status: 0 when every invariant held, 1 when the verdict
// records violations, 2 on harness errors (bad flags, state-dir I/O).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"nodecap/internal/chaos"
	"nodecap/internal/profiling"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scenario  = fs.String("scenario", "mixed", "scenario name (see -list)")
		seed      = fs.Int64("seed", 1, "schedule seed; same seed, same run")
		ticks     = fs.Int("ticks", 1500, "control ticks to simulate (100 µs simtime each)")
		nodes     = fs.Int("nodes", 6, "fleet size")
		parallel  = fs.Int("parallel", 0, "tick shard count (0 = one per CPU, 1 = sequential); verdicts are bit-identical at any setting")
		pollEvery = fs.Int("poll-every", 0, "manager poll cadence in ticks (0 = scenario default); raise for fleet-scale runs")
		rebalance = fs.Int("rebalance-every", 0, "budget rebalance cadence in ticks (0 = scenario default); raise for fleet-scale runs")
		wire      = fs.Bool("wire", false, "run over real TCP sockets through the fault-injecting transport (slower, not bit-deterministic)")
		list      = fs.Bool("list", false, "list scenario names and exit")
		breakFS   = fs.Bool("break-failsafe-floor", false, "deliberately break the fail-safe P-state floor so the checker must flag it (harness self-test)")
		breakFen  = fs.Bool("break-fencing", false, "deliberately disable the nodes' stale-epoch fence so single_writer must flag split-brain (harness self-test)")
		breakRep  = fs.Bool("break-replication", false, "deliberately corrupt replicated records so replica_convergence must flag divergence (harness self-test)")
		breakBrk  = fs.Bool("break-breaker", false, "deliberately misconfigure the circuit breakers (open breakers withhold cap pushes and never probe) so cap_push_bounded and no_starvation must both flag it (harness self-test)")
		breakHnd  = fs.Bool("break-handoff", false, "deliberately skip the fencing-epoch bump on shard handoff so single_owner must flag the dual writers (harness self-test; sharded scenarios)")
		breakAgg  = fs.Bool("break-aggregator", false, "deliberately over-allocate the budget cascade so tree_budget_conserved must flag it (harness self-test; sharded scenarios)")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		fmt.Fprintln(stdout, strings.Join(chaos.ScenarioNames, "\n"))
		return 0
	}

	s, err := chaos.Build(*scenario, *seed, *ticks, *nodes)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	s.Wire = *wire
	s.Parallelism = *parallel
	if *pollEvery > 0 {
		s.PollEvery = *pollEvery
	}
	if *rebalance > 0 {
		s.RebalanceEvery = *rebalance
	}
	s.BreakFailSafeFloor = *breakFS
	s.BreakFencing = *breakFen
	s.BreakReplication = *breakRep
	s.BreakBreaker = *breakBrk
	s.BreakHandoff = *breakHnd
	s.BreakAggregator = *breakAgg
	stopCPU, err := profiling.StartCPU(*cpuProf)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	v, err := chaos.Run(s)
	stopCPU()
	if perr := profiling.WriteHeap(*memProf); perr != nil {
		fmt.Fprintln(stderr, perr)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if !v.Pass {
		return 1
	}
	return 0
}
