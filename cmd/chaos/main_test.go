package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunEmitsDeterministicVerdict: the CLI's whole contract — exit 0
// and bit-identical JSON for the same flags.
func TestRunEmitsDeterministicVerdict(t *testing.T) {
	args := []string{"-scenario", "partition", "-seed", "9", "-ticks", "400", "-nodes", "3"}
	var out1, out2, errb bytes.Buffer
	if code := run(args, &out1, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if code := run(args, &out2, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if out1.String() != out2.String() {
		t.Fatalf("verdicts diverge:\n%s\n%s", out1.String(), out2.String())
	}
	var v struct {
		Pass   bool           `json:"pass"`
		Checks map[string]int `json:"checks"`
	}
	if err := json.Unmarshal(out1.Bytes(), &v); err != nil {
		t.Fatalf("verdict is not JSON: %v", err)
	}
	if !v.Pass {
		t.Error("partition scenario did not pass")
	}
	if len(v.Checks) != 10 {
		t.Errorf("verdict reports %d invariants, want 10", len(v.Checks))
	}
}

// TestRunBrokenGuardExitsOne: -break-failsafe-floor must produce exit
// status 1 and a verdict whose violations carry trace windows — the
// contract the CI chaos-smoke job greps for.
func TestRunBrokenGuardExitsOne(t *testing.T) {
	args := []string{"-scenario", "sensor-storm", "-seed", "3", "-ticks", "1200", "-nodes", "5", "-break-failsafe-floor"}
	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errb.String())
	}
	var v struct {
		Pass       bool `json:"pass"`
		Violations []struct {
			Msg   string            `json:"msg"`
			Trace []json.RawMessage `json:"trace"`
		} `json:"violations"`
	}
	if err := json.Unmarshal(out.Bytes(), &v); err != nil {
		t.Fatalf("verdict is not JSON: %v", err)
	}
	if v.Pass || len(v.Violations) == 0 {
		t.Fatalf("broken guard produced a passing verdict: %s", out.String())
	}
	if len(v.Violations[0].Trace) == 0 {
		t.Error("first violation carries no trace window")
	}
}

// TestRunExitCodes: 2 for harness errors, 0 for -list.
func TestRunExitCodes(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-scenario", "nope"}, &out, &errb); code != 2 {
		t.Errorf("unknown scenario: exit %d, want 2", code)
	}
	out.Reset()
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Errorf("-list: exit %d, want 0", code)
	}
	if !strings.Contains(out.String(), "crash-restart") {
		t.Errorf("-list output missing scenarios: %q", out.String())
	}
}
