// Command gating-probe runs the detection microbenchmarks of
// internal/workloads/probes against the simulated node under a series
// of power caps and prints what power-management techniques are in
// effect at each — the diagnosis the paper's authors said they wanted
// to build ("determine, using microbenchmarks, what techniques other
// than DVFS are being used").
//
//	gating-probe                 # the paper's cap schedule
//	gating-probe -caps 140,125   # specific caps
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"nodecap/internal/core"
	"nodecap/internal/machine"
	"nodecap/internal/workloads/probes"
)

func main() {
	capsFlag := flag.String("caps", "", "comma-separated caps in watts (default: uncapped + paper schedule)")
	flag.Parse()

	caps := []float64{0}
	if *capsFlag == "" {
		caps = append(caps, core.PaperCaps()...)
	} else {
		for _, s := range strings.Split(*capsFlag, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				log.Fatalf("gating-probe: bad cap %q", s)
			}
			caps = append(caps, v)
		}
	}

	fmt.Printf("%-9s %9s %8s %8s %8s %10s %12s %12s %s\n",
		"cap(W)", "freq(MHz)", "L1 ways", "L2 ways", "L3 ways", "DTLB", "DRAM med", "DRAM p95", "verdict")
	for _, cap := range caps {
		m := machine.New(machine.Romley())
		m.SetPolicy(cap)
		probes.Detect(m) // convergence pass: the probe load is the load
		r := probes.Detect(m)

		label := "uncapped"
		if cap > 0 {
			label = fmt.Sprintf("%.0f", cap)
		}
		fmt.Printf("%-9s %9.0f %8d %8d %8d %10d %10.0fns %10.0fns %s\n",
			label, r.Frequency.MHz,
			r.L1.Ways, r.L2.Ways, r.L3.Ways, r.DTLB.Entries,
			r.Memory.MedianNanos, r.Memory.P95Nanos,
			verdict(m, r))
	}
}

func verdict(m *machine.Machine, r probes.GatingReport) string {
	if r.DVFSOnly(m) {
		if r.Frequency.MHz > 2500 {
			return "unthrottled"
		}
		return "DVFS only"
	}
	var parts []string
	h := m.Hierarchy().Config()
	if r.L1.Ways < h.L1D.Ways || r.L2.Ways < h.L2.Ways || r.L3.Ways < h.L3.Ways-1 {
		parts = append(parts, "cache way gating")
	}
	if r.DTLB.Entries < h.DTLB.Entries/2 {
		parts = append(parts, "TLB gating")
	}
	if r.Memory.Downclocked {
		parts = append(parts, "memory down-clock")
	}
	if r.Memory.DutyCycled {
		parts = append(parts, "memory duty cycling")
	}
	if len(parts) == 0 {
		parts = append(parts, "sub-DVFS techniques")
	}
	return "DVFS + " + strings.Join(parts, " + ")
}
