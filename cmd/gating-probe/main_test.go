package main

import (
	"strings"
	"testing"

	"nodecap/internal/machine"
	"nodecap/internal/workloads/probes"
)

func TestVerdictClassification(t *testing.T) {
	m := machine.New(machine.Romley())
	h := m.Hierarchy().Config()

	full := probes.GatingReport{
		Frequency: probes.FrequencyEstimate{MHz: 2690},
		L1:        probes.CapacityEstimate{Ways: h.L1D.Ways},
		L2:        probes.CapacityEstimate{Ways: h.L2.Ways},
		L3:        probes.CapacityEstimate{Ways: h.L3.Ways},
		DTLB:      probes.TLBEstimate{Entries: h.DTLB.Entries},
	}
	if got := verdict(m, full); got != "unthrottled" {
		t.Errorf("full-speed verdict = %q", got)
	}

	throttled := full
	throttled.Frequency.MHz = 1500
	if got := verdict(m, throttled); got != "DVFS only" {
		t.Errorf("throttled verdict = %q", got)
	}

	gated := throttled
	gated.L2.Ways = 1
	gated.DTLB.Entries = 16
	gated.Memory = probes.MemoryEstimate{Downclocked: true, DutyCycled: true}
	got := verdict(m, gated)
	for _, want := range []string{"way gating", "TLB gating", "down-clock", "duty cycling"} {
		if !strings.Contains(got, want) {
			t.Errorf("gated verdict %q missing %q", got, want)
		}
	}
}
