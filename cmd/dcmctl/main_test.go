package main

import (
	"strings"
	"testing"

	"nodecap/internal/dcm"
	"nodecap/internal/ipmi"
	"nodecap/internal/machine"
	"nodecap/internal/nodeagent"
)

// harness brings up agent -> IPMI server -> manager -> control-plane
// server, returning the two addresses the CLI dials.
func harness(t *testing.T) (bmcAddr, serverAddr string) {
	t.Helper()
	agent := nodeagent.New(machine.Romley(), nodeagent.Options{})
	t.Cleanup(agent.Stop)
	isrv := ipmi.NewServer(agent)
	bmcAddr, err := isrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { isrv.Close() })

	mgr := dcm.NewManager(nil)
	t.Cleanup(mgr.Close)
	csrv := dcm.NewServer(mgr)
	serverAddr, err = csrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(csrv.Close)
	return bmcAddr, serverAddr
}

func TestViaServerLifecycle(t *testing.T) {
	bmc, server := harness(t)
	steps := [][]string{
		{"add", "n0", bmc},
		{"poll"},
		{"nodes"},
		{"setcap", "n0", "140"},
		{"history", "n0", "5"},
		{"budget", "170", "n0"},
		{"uncap", "n0"},
		{"remove", "n0"},
	}
	for _, args := range steps {
		if err := viaServer(server, args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
}

func TestViaServerErrors(t *testing.T) {
	_, server := harness(t)
	bad := [][]string{
		{"remove", "ghost"},
		{"setcap", "ghost", "140"},
		{"setcap", "n0", "watts"},
		{"budget", "x", "n0"},
		{"budget", "300", ""}, // empty group must be rejected, not OK
		{"budget", "300", ", ,"},
		{"history", "ghost"},
	}
	for _, args := range bad {
		if err := viaServer(server, args); err == nil {
			t.Errorf("%v succeeded, want error", args)
		}
	}
}

func TestViaServerUnreachableEndpoint(t *testing.T) {
	// No dcmd listening: the operator gets one actionable line, not a
	// bare connection-refused.
	err := viaServer("127.0.0.1:1", []string{"nodes"})
	if err == nil {
		t.Fatal("call against a dead control plane succeeded")
	}
	if !strings.Contains(err.Error(), "is the manager running") ||
		!strings.Contains(err.Error(), "127.0.0.1:1") {
		t.Errorf("unhelpful unreachable-endpoint error: %v", err)
	}
}

func TestDirectBMC(t *testing.T) {
	bmc, _ := harness(t)
	for _, args := range [][]string{
		{"status"},
		{"setcap", "135"},
		{"uncap"},
	} {
		if err := direct(bmc, args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
	if err := direct(bmc, []string{"setcap", "x"}); err == nil {
		t.Error("bad watts accepted")
	}
	if err := direct("127.0.0.1:1", []string{"status"}); err == nil {
		t.Error("dead BMC accepted")
	}
}
