package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"nodecap/internal/dcm"
	"nodecap/internal/ipmi"
	"nodecap/internal/machine"
	"nodecap/internal/nodeagent"
	"nodecap/internal/telemetry"
)

// harness brings up agent -> IPMI server -> manager -> control-plane
// server, returning the two addresses the CLI dials.
func harness(t *testing.T) (bmcAddr, serverAddr string) {
	t.Helper()
	agent := nodeagent.New(machine.Romley(), nodeagent.Options{})
	t.Cleanup(agent.Stop)
	isrv := ipmi.NewServer(agent)
	bmcAddr, err := isrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { isrv.Close() })

	mgr := dcm.NewManager(nil)
	mgr.SetTelemetry(telemetry.NewRegistry(), telemetry.NewTrace(256))
	t.Cleanup(mgr.Close)
	csrv := dcm.NewServer(mgr)
	serverAddr, err = csrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(csrv.Close)
	return bmcAddr, serverAddr
}

func TestViaServerLifecycle(t *testing.T) {
	bmc, server := harness(t)
	steps := [][]string{
		{"add", "n0", bmc},
		{"poll"},
		{"nodes"},
		{"setcap", "n0", "140"},
		{"settier", "n0", "high"},
		{"history", "n0", "5"},
		{"budget", "170", "n0"},
		{"trace"},
		{"trace", "-node", "n0", "-n", "10"},
		{"leader"},
		{"uncap", "n0"},
		{"remove", "n0"},
	}
	for _, args := range steps {
		if err := viaServer(server, args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
}

// TestPrintNodesGolden: byte-stable output — rows sorted by name,
// fixed column widths — so fleet listings diff cleanly in scripts.
func TestPrintNodesGolden(t *testing.T) {
	nodes := []dcm.NodeStatus{ // deliberately out of order
		{
			Name: "sim1", Addr: "127.0.0.1:9624", Reachable: false,
			Breaker:   dcm.BreakerOpen,
			LastError: "dial tcp: connection refused plus enough text to get truncated here",
		},
		{
			Name: "sim0", Addr: "127.0.0.1:9623", Reachable: true, Tier: dcm.TierHigh,
			CapEnabled: true, CapWatts: 140,
			ReportedCapEnabled: true, ReportedCapWatts: 140,
			Last:    dcm.Sample{PowerWatts: 138.4, FreqMHz: 2100, PState: 5, GatingLevel: 0},
			Breaker: dcm.BreakerClosed, LatencyEWMA: 1530 * time.Microsecond, BusySkips: 4,
			Drifts: 2, Reconciles: 1, Reconnects: 3,
		},
	}
	var got1, got2 bytes.Buffer
	printNodes(&got1, nodes)
	printNodes(&got2, nodes)
	if got1.String() != got2.String() {
		t.Fatal("printNodes is not deterministic")
	}
	want := "" +
		"NAME         ADDR                   TIER REACHABLE CAP      REPORTED  POWER(W) FREQ(MHz) PSTATE  GATE HEALTH    BREAKER          LAT SKIPS DRIFTS RECONS FAILS RECONN LAST-ERR\n" +
		"sim0         127.0.0.1:9623         high true      140 W    140 W        138.4      2100 P5         0 ok        closed        1.53ms     4      2      1     0      3 -\n" +
		"sim1         127.0.0.1:9624         low  false     off      off            0.0         0 P0         0 ok        open               -     0      0      0     0      0 dial tcp: connection refused plus eno...\n"
	if got1.String() != want {
		t.Errorf("printNodes output changed:\ngot:\n%s\nwant:\n%s", got1.String(), want)
	}
}

// TestPrintLeaderAndRole: the leader subcommand and the ROLE/EPOCH
// header on fleet listings. Solo managers stay headerless so existing
// scripts (and the byte-stable table) see no new first line.
func TestPrintLeaderAndRole(t *testing.T) {
	var b bytes.Buffer
	printLeader(&b, dcm.Response{OK: true, Role: string(dcm.RolePrimary), Epoch: 3})
	if got := b.String(); !strings.Contains(got, "primary") || !strings.Contains(got, "3") {
		t.Errorf("printLeader: %q", got)
	}
	if strings.Contains(b.String(), "fenced") {
		t.Errorf("unfenced leader flagged fenced: %q", b.String())
	}
	b.Reset()
	printLeader(&b, dcm.Response{OK: true, Role: string(dcm.RolePrimary), Epoch: 2, Fenced: true})
	if !strings.Contains(b.String(), "fenced: true") {
		t.Errorf("fenced leader not flagged: %q", b.String())
	}

	b.Reset()
	printRole(&b, dcm.Response{OK: true, Role: string(dcm.RoleSolo)})
	if b.Len() != 0 {
		t.Errorf("solo manager grew a role header: %q", b.String())
	}
	printRole(&b, dcm.Response{OK: true, Role: string(dcm.RoleStandby), Epoch: 4, Fenced: true})
	if got := b.String(); got != "ROLE standby  EPOCH 4  FENCED\n" {
		t.Errorf("role header: %q", got)
	}
}

// TestTraceSubcommandTail: a cap push surfaces in `dcmctl trace`, with
// the node filter honoured.
func TestTraceSubcommandTail(t *testing.T) {
	bmc, server := harness(t)
	for _, args := range [][]string{{"add", "n0", bmc}, {"setcap", "n0", "145"}} {
		if err := viaServer(server, args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
	call := func(req dcm.Request) (dcm.Response, error) {
		return dcm.Call(server, req)
	}
	var out bytes.Buffer
	if err := traceCmd(call, &out, []string{"-node", "n0"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), telemetry.EvCapPush) || !strings.Contains(out.String(), "145.0 W") {
		t.Errorf("trace output missing cap push:\n%s", out.String())
	}
	out.Reset()
	if err := traceCmd(call, &out, []string{"-node", "ghost"}); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("ghost node filter returned events:\n%s", out.String())
	}
}

// setFollowPacing speeds the -follow loop up for tests and restores
// the production pacing afterwards.
func setFollowPacing(t *testing.T, giveUp int) {
	t.Helper()
	oi, ob, om, og := followInterval, followRetryBase, followRetryMax, followGiveUp
	followInterval = time.Millisecond
	followRetryBase = time.Millisecond
	followRetryMax = 4 * time.Millisecond
	followGiveUp = giveUp
	t.Cleanup(func() {
		followInterval, followRetryBase, followRetryMax, followGiveUp = oi, ob, om, og
	})
}

// TestTraceFollowAdvancesCursor: -follow re-polls with Since one past
// the last seen Seq, and surfaces the error once the retry budget is
// spent.
func TestTraceFollowAdvancesCursor(t *testing.T) {
	setFollowPacing(t, 1)

	var calls []dcm.Request
	call := func(req dcm.Request) (dcm.Response, error) {
		calls = append(calls, req)
		switch len(calls) {
		case 1: // initial tail
			return dcm.Response{OK: true, Trace: []telemetry.Event{
				{Seq: 7, Kind: telemetry.EvCapPush, Node: "n0", Watts: 140},
			}}, nil
		case 2: // first follow poll
			return dcm.Response{OK: true, Trace: []telemetry.Event{
				{Seq: 8, Kind: telemetry.EvDrift, Node: "n0", Watts: 140},
			}}, nil
		default:
			return dcm.Response{}, fmt.Errorf("link dropped")
		}
	}
	var out bytes.Buffer
	err := traceCmd(call, &out, []string{"-follow"})
	if err == nil || !strings.Contains(err.Error(), "link dropped") {
		t.Fatalf("follow did not surface the transport error: %v", err)
	}
	if calls[1].Since != 8 || calls[2].Since != 9 {
		t.Errorf("cursor did not advance: %+v", calls)
	}
	if !strings.Contains(out.String(), telemetry.EvCapPush) || !strings.Contains(out.String(), telemetry.EvDrift) {
		t.Errorf("follow output missing events:\n%s", out.String())
	}
}

// TestTraceFollowReconnectsThroughFlakyServer: outages between polls —
// dcmd restarting, a failover — must not end the stream, repeat an
// event, or skip one: -follow backs off, redials, and resumes from the
// cursor it had. The give-up budget only counts *consecutive*
// failures, so a flaky-but-alive server streams forever.
func TestTraceFollowReconnectsThroughFlakyServer(t *testing.T) {
	setFollowPacing(t, 5)

	// Script: initial ok, then two outages (2 then 3 consecutive
	// failures, the second crossing a backoff reset) between successful
	// polls, then a final hard outage exhausting the budget.
	var calls []dcm.Request
	script := []any{
		dcm.Response{OK: true, Trace: []telemetry.Event{{Seq: 1, Kind: telemetry.EvCapPush, Node: "n0", Watts: 140}}},
		fmt.Errorf("conn reset"), fmt.Errorf("conn reset"),
		dcm.Response{OK: true, Trace: []telemetry.Event{{Seq: 2, Kind: telemetry.EvDrift, Node: "n0", Watts: 140}}},
		fmt.Errorf("conn refused"), fmt.Errorf("conn refused"), fmt.Errorf("conn refused"),
		dcm.Response{OK: true, Trace: []telemetry.Event{{Seq: 3, Kind: telemetry.EvReconcile, Node: "n0"}}},
	}
	call := func(req dcm.Request) (dcm.Response, error) {
		calls = append(calls, req)
		if len(calls) <= len(script) {
			switch v := script[len(calls)-1].(type) {
			case dcm.Response:
				return v, nil
			case error:
				return dcm.Response{}, v
			}
		}
		return dcm.Response{}, fmt.Errorf("final outage")
	}
	var out bytes.Buffer
	err := traceCmd(call, &out, []string{"-follow"})
	if err == nil || !strings.Contains(err.Error(), "final outage") {
		t.Fatalf("want the final outage surfaced after the budget, got: %v", err)
	}
	// Every poll after seeing Seq N must ask Since N+1 — including each
	// retry inside an outage (resume, not restart).
	wantSince := []uint64{0, 2, 2, 2, 3, 3, 3, 3, 4}
	for i, req := range calls {
		if i == 0 {
			continue // initial tail uses Limit, not Since
		}
		if i < len(wantSince) && req.Since != wantSince[i] {
			t.Errorf("call %d: Since = %d, want %d", i, req.Since, wantSince[i])
		}
	}
	// All three events, once each, in order.
	for _, kind := range []string{telemetry.EvCapPush, telemetry.EvDrift, telemetry.EvReconcile} {
		if got := strings.Count(out.String(), kind); got != 1 {
			t.Errorf("event %s printed %d times, want exactly once:\n%s", kind, got, out.String())
		}
	}
}

func TestViaServerErrors(t *testing.T) {
	_, server := harness(t)
	bad := [][]string{
		{"remove", "ghost"},
		{"setcap", "ghost", "140"},
		{"setcap", "n0", "watts"},
		{"settier", "ghost", "high"},
		{"settier", "n0", "medium"},
		{"budget", "x", "n0"},
		{"budget", "300", ""}, // empty group must be rejected, not OK
		{"budget", "300", ", ,"},
		{"history", "ghost"},
	}
	for _, args := range bad {
		if err := viaServer(server, args); err == nil {
			t.Errorf("%v succeeded, want error", args)
		}
	}
}

func TestViaServerUnreachableEndpoint(t *testing.T) {
	// No dcmd listening: the operator gets one actionable line, not a
	// bare connection-refused.
	err := viaServer("127.0.0.1:1", []string{"nodes"})
	if err == nil {
		t.Fatal("call against a dead control plane succeeded")
	}
	if !strings.Contains(err.Error(), "is the manager running") ||
		!strings.Contains(err.Error(), "127.0.0.1:1") {
		t.Errorf("unhelpful unreachable-endpoint error: %v", err)
	}
}

func TestDirectBMC(t *testing.T) {
	bmc, _ := harness(t)
	for _, args := range [][]string{
		{"status"},
		{"setcap", "135"},
		{"uncap"},
	} {
		if err := direct(bmc, args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
	if err := direct(bmc, []string{"setcap", "x"}); err == nil {
		t.Error("bad watts accepted")
	}
	if err := direct("127.0.0.1:1", []string{"status"}); err == nil {
		t.Error("dead BMC accepted")
	}
}
