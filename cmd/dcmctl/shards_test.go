package main

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"time"

	"nodecap/internal/dcm"
	"nodecap/internal/ipmi"
	"nodecap/internal/machine"
	"nodecap/internal/nodeagent"
	"nodecap/internal/shard"
	"nodecap/internal/telemetry"
)

// shardedHarness brings up an in-process sharded daemon — leaf
// managers under an aggregator tree, served through the control-plane
// handler override — plus a fleet of simulated BMCs.
func shardedHarness(t *testing.T, leaves, nodes int) (serverAddr string, bmcs []string) {
	t.Helper()
	tree := shard.NewTree(1, 0, nil, "")
	reg, trace := telemetry.NewRegistry(), telemetry.NewTrace(256)
	for i := 0; i < leaves; i++ {
		mgr := dcm.NewManager(nil)
		mgr.SetTelemetry(reg, trace)
		t.Cleanup(mgr.Close)
		if _, err := tree.AddLeaf(fmt.Sprintf("leaf-%02d", i), mgr); err != nil {
			t.Fatal(err)
		}
	}
	srv := dcm.NewServer(nil)
	srv.SetHandler(tree.HandleControl)
	serverAddr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	bmcs = make([]string, nodes)
	for i := range bmcs {
		agent := nodeagent.New(machine.Romley(), nodeagent.Options{})
		t.Cleanup(agent.Stop)
		isrv := ipmi.NewServer(agent)
		addr, err := isrv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { isrv.Close() })
		bmcs[i] = addr
	}
	return serverAddr, bmcs
}

// TestViaServerShardedLifecycle: every dcmctl subcommand a sharded
// daemon supports, end to end over the wire.
func TestViaServerShardedLifecycle(t *testing.T) {
	server, bmcs := shardedHarness(t, 2, 3)
	steps := [][]string{
		{"add", "n0", bmcs[0]},
		{"add", "n1", bmcs[1]},
		{"add", "n2", bmcs[2]},
		{"poll"},
		{"nodes"},
		{"shards"},
		{"setcap", "n0", "140"},
		{"settier", "n1", "high"},
		{"budget", "400"}, // no group: the tree is the group
		{"history", "n0", "5"},
		{"trace"},
		{"leader"},
		{"uncap", "n0"},
		{"remove", "n2"},
	}
	for _, args := range steps {
		if err := viaServer(server, args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
}

// TestShardedNodesAggregatesSorted: the "nodes" op against a sharded
// daemon merges every leaf's view into one name-sorted fleet listing —
// indistinguishable from a flat manager's, plus the aggregator role.
func TestShardedNodesAggregatesSorted(t *testing.T) {
	server, bmcs := shardedHarness(t, 2, 4)
	names := []string{"n3", "n0", "n2", "n1"} // added out of order
	for i, name := range names {
		resp, err := dcm.CallTimeout(server, dcm.Request{Op: "add", Name: name, Addr: bmcs[i]}, time.Minute)
		if err != nil || !resp.OK {
			t.Fatalf("add %s: %v %+v", name, err, resp)
		}
	}
	resp, err := dcm.CallTimeout(server, dcm.Request{Op: "nodes"}, time.Minute)
	if err != nil || !resp.OK {
		t.Fatalf("nodes: %v %+v", err, resp)
	}
	if resp.Role != shard.RoleAggregator {
		t.Errorf("role %q, want %q", resp.Role, shard.RoleAggregator)
	}
	if len(resp.Nodes) != len(names) {
		t.Fatalf("aggregate lists %d of %d nodes", len(resp.Nodes), len(names))
	}
	if !sort.SliceIsSorted(resp.Nodes, func(i, j int) bool { return resp.Nodes[i].Name < resp.Nodes[j].Name }) {
		t.Errorf("aggregate not sorted: %+v", resp.Nodes)
	}
}

// TestPrintShardsGolden: byte-stable output — rows sorted by leaf,
// fixed column widths — so shard listings diff cleanly in scripts.
func TestPrintShardsGolden(t *testing.T) {
	shards := []dcm.ShardStatus{ // deliberately out of order
		{Leaf: "leaf-01", Alive: false, Epoch: 4, Nodes: 0},
		{Leaf: "leaf-00", Alive: true, Epoch: 4, Nodes: 3, BudgetWatts: 512.5},
		{Leaf: "leaf-02", Alive: true, Epoch: 4, Nodes: 2, BudgetWatts: 80, Infeasible: true},
	}
	var got1, got2 bytes.Buffer
	printShards(&got1, shards)
	printShards(&got2, shards)
	if got1.String() != got2.String() {
		t.Fatal("printShards is not deterministic")
	}
	want := "" +
		"LEAF         ALIVE   EPOCH  NODES     BUDGET FEASIBLE\n" +
		"leaf-00      true        4      3    512.5 W yes\n" +
		"leaf-01      false       4      0          - yes\n" +
		"leaf-02      true        4      2     80.0 W pinned-min\n"
	if got1.String() != want {
		t.Errorf("printShards output changed:\ngot:\n%s\nwant:\n%s", got1.String(), want)
	}
}
