// Command dcmctl is the operator CLI for the Data Center Manager
// control plane (see cmd/dcmd to run the manager itself, or use the
// embedded manager mode below for one-shot operations).
//
// Against a running dcmd:
//
//	dcmctl -server 127.0.0.1:9650 add sim0 127.0.0.1:9623
//	dcmctl -server 127.0.0.1:9650 nodes
//	dcmctl -server 127.0.0.1:9650 setcap sim0 140
//	dcmctl -server 127.0.0.1:9650 budget 300 sim0,sim1
//	dcmctl -server 127.0.0.1:9650 history sim0 20
//	dcmctl -server 127.0.0.1:9650 trace -node sim0 -n 50
//	dcmctl -server 127.0.0.1:9650 trace -follow
//
// Direct mode (no dcmd; talks IPMI straight to one BMC):
//
//	dcmctl -bmc 127.0.0.1:9623 status
//	dcmctl -bmc 127.0.0.1:9623 setcap 140
//	dcmctl -bmc 127.0.0.1:9623 uncap
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"nodecap/internal/dcm"
	"nodecap/internal/ipmi"
	"nodecap/internal/telemetry"
)

// callTimeout bounds each control-plane round trip; the -timeout flag
// overrides it.
var callTimeout = dcm.DefaultCallTimeout

func main() {
	server := flag.String("server", "", "dcmd control-plane address")
	bmcAddr := flag.String("bmc", "", "direct BMC address (bypasses dcmd)")
	timeout := flag.Duration("timeout", dcm.DefaultCallTimeout, "control-plane call timeout (0 = none)")
	flag.Parse()
	callTimeout = *timeout
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	var err error
	switch {
	case *bmcAddr != "":
		err = direct(*bmcAddr, args)
	case *server != "":
		err = viaServer(*server, args)
	default:
		err = fmt.Errorf("one of -server or -bmc is required")
	}
	if err != nil {
		log.Fatalf("dcmctl: %v", err)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  dcmctl -server ADDR add NAME BMCADDR | remove NAME | nodes | poll
  dcmctl -server ADDR setcap NAME WATTS | uncap NAME
  dcmctl -server ADDR settier NAME high|low
  dcmctl -server ADDR budget WATTS [NAME1,NAME2,...]   (sharded daemons ignore the group: the tree is the group)
  dcmctl -server ADDR history NAME [N]
  dcmctl -server ADDR trace [-follow] [-node NAME] [-n N]
  dcmctl -server ADDR leader
  dcmctl -server ADDR shards
  dcmctl -bmc ADDR status | setcap WATTS | uncap
`)
	os.Exit(2)
}

// viaServer drives the dcmd control plane.
func viaServer(addr string, args []string) error {
	call := func(req dcm.Request) (dcm.Response, error) {
		resp, err := dcm.CallTimeout(addr, req, callTimeout)
		if err != nil {
			return resp, fmt.Errorf("cannot reach dcmd at %s (%v) — is the manager running? start it with: dcmd -listen %s", addr, err, addr)
		}
		if !resp.OK {
			return resp, fmt.Errorf("%s", resp.Error)
		}
		return resp, nil
	}
	switch args[0] {
	case "add":
		if len(args) != 3 {
			usage()
		}
		_, err := call(dcm.Request{Op: "add", Name: args[1], Addr: args[2]})
		return err
	case "remove":
		if len(args) != 2 {
			usage()
		}
		_, err := call(dcm.Request{Op: "remove", Name: args[1]})
		return err
	case "nodes", "poll":
		resp, err := call(dcm.Request{Op: args[0]})
		if err != nil {
			return err
		}
		printRole(os.Stdout, resp)
		printNodes(os.Stdout, resp.Nodes)
		return nil
	case "leader":
		resp, err := call(dcm.Request{Op: "leader"})
		if err != nil {
			return err
		}
		printLeader(os.Stdout, resp)
		return nil
	case "shards":
		resp, err := call(dcm.Request{Op: "shards"})
		if err != nil {
			return err
		}
		printRole(os.Stdout, resp)
		printShards(os.Stdout, resp.Shards)
		return nil
	case "trace":
		return traceCmd(call, os.Stdout, args[1:])
	case "setcap":
		if len(args) != 3 {
			usage()
		}
		watts, err := strconv.ParseFloat(args[2], 64)
		if err != nil {
			return fmt.Errorf("bad watts %q", args[2])
		}
		_, err = call(dcm.Request{Op: "setcap", Name: args[1], Cap: watts})
		return err
	case "uncap":
		if len(args) != 2 {
			usage()
		}
		_, err := call(dcm.Request{Op: "setcap", Name: args[1], Cap: 0})
		return err
	case "settier":
		if len(args) != 3 {
			usage()
		}
		if _, err := dcm.ParseTier(args[2]); err != nil {
			return err
		}
		_, err := call(dcm.Request{Op: "settier", Name: args[1], Tier: args[2]})
		return err
	case "budget":
		if len(args) != 2 && len(args) != 3 {
			usage()
		}
		watts, err := strconv.ParseFloat(args[1], 64)
		if err != nil {
			return fmt.Errorf("bad budget %q", args[1])
		}
		var group []string
		if len(args) == 3 {
			for _, name := range strings.Split(args[2], ",") {
				if name = strings.TrimSpace(name); name != "" {
					group = append(group, name)
				}
			}
		}
		resp, err := call(dcm.Request{Op: "budget", Budget: watts, Group: group})
		if err != nil {
			return err
		}
		for _, a := range resp.Allocs {
			fmt.Printf("%-12s %7.1f W\n", a.Name, a.CapWatts)
		}
		return nil
	case "history":
		if len(args) < 2 {
			usage()
		}
		limit := 0
		if len(args) == 3 {
			limit, _ = strconv.Atoi(args[2])
		}
		resp, err := call(dcm.Request{Op: "history", Name: args[1], Limit: limit})
		if err != nil {
			return err
		}
		for _, s := range resp.History {
			fmt.Printf("%s  %7.1f W  %4d MHz  P%-2d  gate %d\n",
				s.At.Format("15:04:05.000"), s.PowerWatts, s.FreqMHz, s.PState, s.GatingLevel)
		}
		return nil
	default:
		usage()
		return nil
	}
}

// printRole prefixes a fleet listing with the serving manager's HA
// identity (a separate line, so printNodes's byte-stable table is
// unchanged). Solo managers — no HA pair — print nothing.
func printRole(w io.Writer, resp dcm.Response) {
	if resp.Role == "" || resp.Role == string(dcm.RoleSolo) {
		return
	}
	fmt.Fprintf(w, "ROLE %s  EPOCH %d", resp.Role, resp.Epoch)
	if resp.Fenced {
		fmt.Fprint(w, "  FENCED")
	}
	fmt.Fprintln(w)
}

// printLeader renders the "leader" op: who this endpoint believes it
// is. A fenced manager is flagged loudly — a node rejected its push
// for a stale epoch, so a newer leader is actuating the fleet.
func printLeader(w io.Writer, resp dcm.Response) {
	fmt.Fprintf(w, "role  : %s\n", resp.Role)
	fmt.Fprintf(w, "epoch : %d\n", resp.Epoch)
	if resp.Fenced {
		fmt.Fprintln(w, "fenced: true (a newer leader has actuated the fleet; this member must stand down)")
	}
}

// printNodes renders the fleet table. Output is deterministic: rows
// sort by name (defensively — the server already sorts) and every
// column has a fixed width, so scripts and golden tests can rely on
// byte-stable output for the same status.
func printNodes(w io.Writer, nodes []dcm.NodeStatus) {
	nodes = append([]dcm.NodeStatus(nil), nodes...)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	fmt.Fprintf(w, "%-12s %-22s %-4s %-9s %-8s %-8s %9s %9s %6s %5s %-9s %-11s %8s %5s %6s %6s %5s %6s %s\n",
		"NAME", "ADDR", "TIER", "REACHABLE", "CAP", "REPORTED", "POWER(W)", "FREQ(MHz)", "PSTATE", "GATE",
		"HEALTH", "BREAKER", "LAT", "SKIPS", "DRIFTS", "RECONS", "FAILS", "RECONN", "LAST-ERR")
	for _, n := range nodes {
		capFor := func(enabled bool, watts float64) string {
			if !enabled {
				return "off"
			}
			return fmt.Sprintf("%.0f W", watts)
		}
		lastErr := n.LastError
		if lastErr == "" {
			lastErr = "-"
		} else if len(lastErr) > 40 {
			lastErr = lastErr[:37] + "..."
		}
		tier := string(n.Tier)
		if tier == "" {
			tier = string(dcm.TierLow)
		}
		brk := string(n.Breaker)
		if brk == "" {
			brk = string(dcm.BreakerClosed)
		}
		lat := "-"
		if n.LatencyEWMA > 0 {
			lat = n.LatencyEWMA.Round(10 * time.Microsecond).String()
		}
		fmt.Fprintf(w, "%-12s %-22s %-4s %-9v %-8s %-8s %9.1f %9d P%-5d %5d %-9s %-11s %8s %5d %6d %6d %5d %6d %s\n",
			n.Name, n.Addr, tier, n.Reachable,
			capFor(n.CapEnabled, n.CapWatts),
			capFor(n.ReportedCapEnabled, n.ReportedCapWatts),
			n.Last.PowerWatts, n.Last.FreqMHz, n.Last.PState, n.Last.GatingLevel,
			healthFlags(n), brk, lat, n.BusySkips, n.Drifts, n.Reconciles,
			n.ConsecFailures, n.Reconnects, lastErr)
	}
}

// printShards renders a sharded daemon's per-leaf table ("shards"
// op). Deterministic like printNodes: rows sort by leaf name and every
// column has a fixed width, so golden tests and scripts can rely on
// byte-stable output for the same status.
func printShards(w io.Writer, shards []dcm.ShardStatus) {
	shards = append([]dcm.ShardStatus(nil), shards...)
	sort.Slice(shards, func(i, j int) bool { return shards[i].Leaf < shards[j].Leaf })
	fmt.Fprintf(w, "%-12s %-6s %6s %6s %10s %s\n",
		"LEAF", "ALIVE", "EPOCH", "NODES", "BUDGET", "FEASIBLE")
	for _, s := range shards {
		budget := "-"
		if s.BudgetWatts > 0 {
			budget = fmt.Sprintf("%.1f W", s.BudgetWatts)
		}
		feas := "yes"
		if s.Infeasible {
			feas = "pinned-min"
		}
		fmt.Fprintf(w, "%-12s %-6v %6d %6d %10s %s\n",
			s.Leaf, s.Alive, s.Epoch, s.Nodes, budget, feas)
	}
}

// Trace -follow pacing and reconnect policy; vars so tests can spin
// faster.
var (
	// followInterval paces polling while the link is healthy.
	followInterval = 500 * time.Millisecond
	// followRetryBase/Max bound the backoff between reconnect attempts
	// after a failed poll.
	followRetryBase = 500 * time.Millisecond
	followRetryMax  = 15 * time.Second
	// followGiveUp bounds consecutive failed polls before -follow
	// surfaces the error (0 = retry forever); tests lower it.
	followGiveUp = 0
)

// traceCmd implements the trace subcommand: a one-shot tail of the
// manager's control-decision trace, or -follow to stream new events by
// cursor (Seq) until interrupted. A dropped control plane — dcmd
// restarting, a failover to the standby — does not end the stream:
// -follow redials with capped jittered backoff and resumes from the
// same cursor, so no event is lost or repeated across the outage.
func traceCmd(call func(dcm.Request) (dcm.Response, error), w io.Writer, args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	var (
		follow = fs.Bool("follow", false, "stream new events until interrupted")
		node   = fs.String("node", "", "only events for this node")
		n      = fs.Int("n", 64, "tail length for the initial fetch")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	resp, err := call(dcm.Request{Op: "trace", Name: *node, Limit: *n})
	if err != nil {
		return err
	}
	var last uint64
	for _, ev := range resp.Trace {
		fmt.Fprintln(w, formatEvent(ev))
		last = ev.Seq
	}
	fails, delay := 0, followRetryBase
	for *follow {
		time.Sleep(followInterval)
		resp, err := call(dcm.Request{Op: "trace", Name: *node, Since: last + 1})
		if err != nil {
			fails++
			if followGiveUp > 0 && fails >= followGiveUp {
				return fmt.Errorf("trace follow: giving up after %d consecutive failures: %w", fails, err)
			}
			// Jitter in [delay/2, delay] so a herd of followers does not
			// redial a restarted dcmd in lockstep.
			d := delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
			fmt.Fprintf(os.Stderr, "dcmctl: trace follow: %v; retrying in %v\n", err, d.Round(time.Millisecond))
			time.Sleep(d)
			if delay *= 2; delay > followRetryMax {
				delay = followRetryMax
			}
			continue
		}
		fails, delay = 0, followRetryBase
		for _, ev := range resp.Trace {
			fmt.Fprintln(w, formatEvent(ev))
			last = ev.Seq
		}
	}
	return nil
}

// formatEvent renders one trace event as a stable single line.
func formatEvent(ev telemetry.Event) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8d", ev.Seq)
	if ev.WallNS != 0 {
		fmt.Fprintf(&b, "  %s", time.Unix(0, ev.WallNS).Format("15:04:05.000"))
	} else {
		fmt.Fprintf(&b, "  tick %-8d", ev.Tick)
	}
	name := ev.Node
	if name == "" {
		name = "-"
	}
	fmt.Fprintf(&b, "  %-12s %-16s", name, ev.Kind)
	if ev.Watts != 0 {
		fmt.Fprintf(&b, " %7.1f W", ev.Watts)
	}
	if ev.N != 0 {
		fmt.Fprintf(&b, " n=%d", ev.N)
	}
	if ev.Err != "" {
		fmt.Fprintf(&b, " err=%q", ev.Err)
	}
	return b.String()
}

// healthFlags renders the BMC's defensive-controller status: "ok", or
// the conditions that need an operator's eye.
func healthFlags(n dcm.NodeStatus) string {
	var flags []string
	if n.FailSafe {
		flags = append(flags, "FAILSAFE")
	}
	if n.InfeasibleCap {
		flags = append(flags, "lowcap")
	}
	if n.SensorFaults > 0 {
		flags = append(flags, fmt.Sprintf("sf=%d", n.SensorFaults))
	}
	if len(flags) == 0 {
		return "ok"
	}
	return strings.Join(flags, ",")
}

// direct drives one BMC without a manager.
func direct(addr string, args []string) error {
	c, err := ipmi.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	switch args[0] {
	case "status":
		di, err := c.GetDeviceID()
		if err != nil {
			return err
		}
		pr, err := c.GetPowerReading()
		if err != nil {
			return err
		}
		lim, err := c.GetPowerLimit()
		if err != nil {
			return err
		}
		ps, err := c.GetPStateInfo()
		if err != nil {
			return err
		}
		g, err := c.GetGatingLevel()
		if err != nil {
			return err
		}
		caps, err := c.GetCapabilities()
		if err != nil {
			return err
		}
		h, err := c.GetHealth()
		if err != nil {
			return err
		}
		fmt.Printf("device     : id=%#x fw=%d.%d mfg=%d product=%#x\n",
			di.DeviceID, di.FirmwareMajor, di.FirmwareMinor, di.ManufacturerID, di.ProductID)
		fmt.Printf("power      : %.1f W now, %.1f W average\n", pr.CurrentWatts, pr.AverageWatts)
		if lim.Enabled {
			fmt.Printf("cap        : %.1f W\n", lim.CapWatts)
		} else {
			fmt.Printf("cap        : disabled\n")
		}
		fmt.Printf("dvfs       : P%d of %d states, %d MHz\n", ps.Index, ps.Count, ps.FreqMHz)
		fmt.Printf("gating     : level %d\n", g)
		fmt.Printf("cap range  : %.1f - %.1f W\n", caps.MinCapWatts, caps.MaxCapWatts)
		health := "ok"
		if h.FailSafe {
			health = "FAIL-SAFE (sensor distrusted; node clamped at safe floor)"
		} else if h.InfeasibleCap {
			health = "cap below platform floor; node pinned at floor"
		}
		fmt.Printf("health     : %s (%d sensor faults)\n", health, h.SensorFaults)
		return nil
	case "setcap":
		if len(args) != 2 {
			usage()
		}
		watts, err := strconv.ParseFloat(args[1], 64)
		if err != nil {
			return fmt.Errorf("bad watts %q", args[1])
		}
		return c.SetPowerLimit(ipmi.PowerLimit{Enabled: true, CapWatts: watts})
	case "uncap":
		return c.SetPowerLimit(ipmi.PowerLimit{})
	default:
		usage()
		return nil
	}
}
