package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testBaseline = `{
  "benchdiff_baseline": {
    "benchmarks": {
      "BenchmarkFleetTick": { "ns_per_op": 100000, "allocs_per_op": 0 },
      "BenchmarkMachineOpThroughput": { "ns_per_op": 100 }
    }
  }
}`

// benchOutput fabricates go-test bench output with the given ns/op
// series (FleetTick also carries alloc columns).
func benchOutput(fleetNs []string, fleetAllocs string, opNs []string) string {
	var b strings.Builder
	b.WriteString("goos: linux\ngoarch: amd64\npkg: nodecap\ncpu: Test CPU\n")
	for _, ns := range fleetNs {
		b.WriteString("BenchmarkFleetTick-8 \t   10000\t    " + ns + " ns/op\t  90000000 node-ticks/s\t       0 B/op\t       " + fleetAllocs + " allocs/op\n")
	}
	for _, ns := range opNs {
		b.WriteString("BenchmarkMachineOpThroughput \t 9672907\t       " + ns + " ns/op\n")
	}
	b.WriteString("PASS\nok  \tnodecap\t8.072s\n")
	return b.String()
}

func runDiff(t *testing.T, input string, extra ...string) (int, string, string) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	if err := os.WriteFile(path, []byte(testBaseline), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	args := append([]string{"-baseline", path}, extra...)
	code := run(args, strings.NewReader(input), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestWithinBoundsPasses(t *testing.T) {
	// Medians: 101000 (+1%) and 99 (-1%) — both inside 15%.
	code, out, _ := runDiff(t,
		benchOutput([]string{"99000", "101000", "105000"}, "0", []string{"98", "99", "101"}))
	if code != 0 {
		t.Fatalf("exit %d, want 0; output:\n%s", code, out)
	}
	if !strings.Contains(out, "BenchmarkFleetTick") || !strings.Contains(out, "ok") {
		t.Fatalf("report missing benchmark rows:\n%s", out)
	}
}

func TestMedianShrugsOffOutlier(t *testing.T) {
	// One wild 300000 run; median of {98000, 99000, 300000} is 99000.
	code, out, _ := runDiff(t,
		benchOutput([]string{"98000", "300000", "99000"}, "0", []string{"100"}))
	if code != 0 {
		t.Fatalf("outlier failed the diff (exit %d):\n%s", code, out)
	}
}

func TestRegressionFails(t *testing.T) {
	// FleetTick median 120000 = +20% > 15%.
	code, out, _ := runDiff(t,
		benchOutput([]string{"119000", "120000", "121000"}, "0", []string{"100"}))
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "REGRESSION") {
		t.Fatalf("report does not flag the regression:\n%s", out)
	}
}

func TestAllocRegressionFails(t *testing.T) {
	// Fast but allocating: the zero-alloc bound is a hard ceiling.
	code, out, _ := runDiff(t,
		benchOutput([]string{"90000", "90000", "90000"}, "3", []string{"100"}))
	if code != 1 {
		t.Fatalf("exit %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "allocs/op") {
		t.Fatalf("report does not name the alloc regression:\n%s", out)
	}
}

func TestMaxRegressFlagWidens(t *testing.T) {
	code, out, _ := runDiff(t,
		benchOutput([]string{"120000"}, "0", []string{"100"}), "-max-regress", "0.25")
	if code != 0 {
		t.Fatalf("+20%% failed at -max-regress 0.25 (exit %d):\n%s", code, out)
	}
}

func TestMissingBenchmarkIsHarnessError(t *testing.T) {
	// Only one of the two baselined benchmarks present: exit 2, so a
	// mis-scoped -bench regex cannot silently skip the comparison.
	code, _, errOut := runDiff(t, benchOutput([]string{"100000"}, "0", nil))
	if code != 2 {
		t.Fatalf("exit %d, want 2; stderr:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "BenchmarkMachineOpThroughput") {
		t.Fatalf("stderr does not name the missing benchmark:\n%s", errOut)
	}
}

func TestMissingBaselineFileIsHarnessError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-baseline", filepath.Join(t.TempDir(), "nope.json")},
		strings.NewReader(""), &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestInputFileFlag(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(benchOutput([]string{"100000"}, "0", []string{"100"})), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runDiff(t, "", "-input", in)
	if code != 0 {
		t.Fatalf("exit %d, want 0; stdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
}

// TestRepoBaselineParses guards the committed BENCH_8.json: benchdiff
// must be able to load the real baseline it is wired to in CI.
func TestRepoBaselineParses(t *testing.T) {
	base, err := loadBaseline(filepath.Join("..", "..", "BENCH_8.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"BenchmarkFleetTick", "BenchmarkMachineOpThroughput"} {
		if _, ok := base[name]; !ok {
			t.Errorf("BENCH_8.json baseline missing %s", name)
		}
	}
}
