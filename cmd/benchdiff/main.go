// Command benchdiff guards the repo's hot paths against performance
// regressions: it parses `go test -bench` output, takes the median
// ns/op per benchmark (medians shrug off the odd noisy run in a
// -count=N series), and compares against the committed baseline in a
// BENCH_*.json file.
//
//	go test -run '^$' -bench 'FleetTick|MachineOpThroughput' -count=5 . | benchdiff -baseline BENCH_8.json
//
// Exit status: 0 when every baselined benchmark is within bounds,
// 1 on a regression (median slower than baseline by more than
// -max-regress, or allocs/op above a baselined alloc bound), 2 on
// harness errors (missing baseline file, no samples for a baselined
// benchmark).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// baselineEntry is one benchmark's committed bound.
type baselineEntry struct {
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp, when present, is a hard ceiling (a zero-alloc hot
	// path that starts allocating is a regression at any speed).
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

// baselineFile matches the BENCH_*.json layout: only the
// benchdiff_baseline section is read, the rest of the file is the
// human-facing record.
type baselineFile struct {
	BenchdiffBaseline struct {
		Benchmarks map[string]baselineEntry `json:"benchmarks"`
	} `json:"benchdiff_baseline"`
}

// sample is one parsed benchmark result line.
type sample struct {
	nsPerOp     float64
	allocsPerOp float64
	hasAllocs   bool
}

// procSuffix strips the -N GOMAXPROCS suffix Go appends to benchmark
// names (BenchmarkFleetTick-8 → BenchmarkFleetTick).
var procSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baselinePath = fs.String("baseline", "BENCH_8.json", "baseline JSON file (benchdiff_baseline.benchmarks section)")
		input        = fs.String("input", "-", "benchmark output to check (- = stdin)")
		maxRegress   = fs.Float64("max-regress", 0.15, "fail when median ns/op exceeds baseline by more than this fraction")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	base, err := loadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	r := stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 2
		}
		defer f.Close()
		r = f
	}
	samples, err := parseBench(r)
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		entry := base[name]
		got, ok := samples[name]
		if !ok {
			fmt.Fprintf(stderr, "benchdiff: no samples for baselined benchmark %s\n", name)
			return 2
		}
		med := medianNs(got)
		ratio := med/entry.NsPerOp - 1
		status := "ok"
		if ratio > *maxRegress {
			status = "REGRESSION"
			failed = true
		}
		fmt.Fprintf(stdout, "%-32s baseline %12.1f ns/op  median %12.1f ns/op  %+6.1f%%  %s\n",
			name, entry.NsPerOp, med, 100*ratio, status)
		if entry.AllocsPerOp != nil {
			worst := worstAllocs(got)
			if worst > *entry.AllocsPerOp {
				fmt.Fprintf(stdout, "%-32s allocs/op %.0f exceeds baselined bound %.0f  REGRESSION\n",
					name, worst, *entry.AllocsPerOp)
				failed = true
			}
		}
	}
	if failed {
		return 1
	}
	return 0
}

func loadBaseline(path string) (map[string]baselineEntry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchdiff: %w", err)
	}
	var f baselineFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("benchdiff: parsing %s: %w", path, err)
	}
	if len(f.BenchdiffBaseline.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchdiff: %s has no benchdiff_baseline.benchmarks section", path)
	}
	return f.BenchdiffBaseline.Benchmarks, nil
}

// parseBench collects result lines from `go test -bench` output,
// grouping samples by benchmark name with the GOMAXPROCS suffix
// stripped. Non-benchmark lines (headers, PASS, ok) are ignored.
func parseBench(r io.Reader) (map[string][]sample, error) {
	out := make(map[string][]sample)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		var s sample
		found := false
		// Result lines are "<name> <iters> <value> <unit> [<value> <unit>]...".
		for i := 3; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				break
			}
			switch fields[i] {
			case "ns/op":
				s.nsPerOp, found = v, true
			case "allocs/op":
				s.allocsPerOp, s.hasAllocs = v, true
			}
		}
		if found {
			out[name] = append(out[name], s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// medianNs is the median ns/op of a sample series (mean of the middle
// pair for even lengths).
func medianNs(ss []sample) float64 {
	ns := make([]float64, len(ss))
	for i, s := range ss {
		ns[i] = s.nsPerOp
	}
	sort.Float64s(ns)
	n := len(ns)
	if n%2 == 1 {
		return ns[n/2]
	}
	return (ns[n/2-1] + ns[n/2]) / 2
}

// worstAllocs is the maximum allocs/op seen; a single allocating run
// of a zero-alloc path is already a regression.
func worstAllocs(ss []sample) float64 {
	worst := 0.0
	for _, s := range ss {
		if s.hasAllocs && s.allocsPerOp > worst {
			worst = s.allocsPerOp
		}
	}
	return worst
}
