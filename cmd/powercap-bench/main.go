// Command powercap-bench regenerates every table and figure of the
// paper's evaluation section on the simulated platform:
//
//	Table I   — baseline power and execution time (both workloads)
//	Table II  — the full cap sweep with percent differences
//	Figure 1  — SIRE/RSM normalized metric series
//	Figure 2  — Stereo Matching normalized metric series
//	Figure 3  — memory-stride probe, no cap
//	Figure 4  — memory-stride probe, 120 W cap
//
// Usage:
//
//	powercap-bench -all                 # everything, paper-sized
//	powercap-bench -table2 -fast        # reduced inputs and trials
//	powercap-bench -fig3 -csv out/      # also write CSV artefacts
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"nodecap/internal/core"
	"nodecap/internal/machine"
	"nodecap/internal/profiling"
	"nodecap/internal/report"
	"nodecap/internal/workloads/sar"
	"nodecap/internal/workloads/stereo"
	"nodecap/internal/workloads/stride"
)

type options struct {
	fast     bool
	trials   int
	parallel int
	csvDir   string
	memo     *core.Memo
}

func main() {
	var (
		all      = flag.Bool("all", false, "run every experiment")
		table1   = flag.Bool("table1", false, "Table I: baselines")
		table2   = flag.Bool("table2", false, "Table II: cap sweep")
		fig1     = flag.Bool("fig1", false, "Figure 1: SIRE/RSM normalized series")
		fig2     = flag.Bool("fig2", false, "Figure 2: Stereo Matching normalized series")
		fig3     = flag.Bool("fig3", false, "Figure 3: stride probe, no cap")
		fig4     = flag.Bool("fig4", false, "Figure 4: stride probe, 120 W cap")
		fig4deep = flag.Bool("fig4deep", false, "Figure 4 with the deep memory-gating ladder (paper-magnitude access times)")
		fast     = flag.Bool("fast", false, "reduced inputs and trials")
		trials   = flag.Int("trials", 0, "trials per cap (default 5, or 2 with -fast)")
		parallel = flag.Int("parallel", 0, "worker pool size for sweep runs (0 = one per CPU, 1 = sequential)")
		csvDir   = flag.String("csv", "", "directory for CSV artefacts (optional)")
		memo     = flag.Bool("memo", false, "memoize sweep runs so repeated (cap, trial) grid points skip simulation")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	opt := options{fast: *fast, trials: *trials, parallel: *parallel, csvDir: *csvDir}
	if *memo {
		opt.memo = core.NewMemo(0)
	}
	stopCPU, err := profiling.StartCPU(*cpuProf)
	if err != nil {
		log.Fatalf("powercap-bench: %v", err)
	}
	defer func() {
		stopCPU()
		if err := profiling.WriteHeap(*memProf); err != nil {
			log.Fatalf("powercap-bench: %v", err)
		}
	}()
	if opt.trials <= 0 {
		opt.trials = 5
		if opt.fast {
			opt.trials = 2
		}
	}
	if opt.csvDir != "" {
		if err := os.MkdirAll(opt.csvDir, 0o755); err != nil {
			log.Fatalf("powercap-bench: %v", err)
		}
	}

	none := !*table1 && !*table2 && !*fig1 && !*fig2 && !*fig3 && !*fig4 && !*fig4deep
	if *all || none {
		*table1, *table2, *fig1, *fig2, *fig3, *fig4 = true, true, true, true, true, true
	}

	// The two table/figure sweeps share runs: compute each workload's
	// sweep once.
	var sireRes, stereoRes core.SweepResult
	needSweeps := *table1 || *table2 || *fig1 || *fig2
	if needSweeps {
		sireRes = runSweep(opt, "SIRE/RSM")
		stereoRes = runSweep(opt, "Stereo Matching")
	}

	if *table1 {
		fmt.Println(report.TableI([]core.SweepResult{sireRes, stereoRes}))
	}
	if *table2 {
		fmt.Println(report.TableII(stereoRes, "A"))
		fmt.Println(report.TableII(sireRes, "B"))
	}
	if *fig1 {
		fmt.Println(report.Figure12(sireRes, "Figure 1: SIRE/RSM", false))
		writeCSV(opt, "figure1.csv", report.Figure12CSV(sireRes, false))
	}
	if *fig2 {
		fmt.Println(report.Figure12(stereoRes, "Figure 2: Stereo Matching (simulated annealing)", true))
		writeCSV(opt, "figure2.csv", report.Figure12CSV(stereoRes, true))
	}
	if *fig3 {
		pts := runProbe(opt, 0, false)
		fmt.Println(report.StrideFigure(pts, "Figure 3: stride microbenchmark, no power cap"))
		writeCSV(opt, "figure3.csv", report.StrideCSV(pts))
		if g, err := stride.Infer(pts); err == nil {
			fmt.Printf("inferred: L1=%dK L2=%dK L3=%dM; access times %.1f/%.1f/%.1f ns, memory %.1f ns\n\n",
				g.L1Bytes>>10, g.L2Bytes>>10, g.L3Bytes>>20,
				g.L1Nanos, g.L2Nanos, g.L3Nanos, g.MemNanos)
		}
	}
	if *fig4 {
		pts := runProbe(opt, 120, false)
		fmt.Println(report.StrideFigure(pts, "Figure 4: stride microbenchmark, 120 W power cap"))
		writeCSV(opt, "figure4.csv", report.StrideCSV(pts))
	}
	if *fig4deep {
		pts := runProbe(opt, 120, true)
		fmt.Println(report.StrideFigure(pts,
			"Figure 4 (deep ladder): stride microbenchmark, 120 W cap, paper-magnitude memory gating"))
		writeCSV(opt, "figure4_deep.csv", report.StrideCSV(pts))
	}
}

// sweepWorkload builds the per-experiment workload constructor.
func sweepWorkload(opt options, name string) func() machine.Workload {
	switch name {
	case "SIRE/RSM":
		cfg := sar.DefaultConfig()
		if opt.fast {
			cfg.RSMIterations = 2
			cfg.ImageSize = 64
		}
		return func() machine.Workload { return sar.New(cfg) }
	case "Stereo Matching":
		cfg := stereo.DefaultConfig()
		if opt.fast {
			cfg.Sweeps = 1
		}
		return func() machine.Workload { return stereo.New(cfg) }
	default:
		log.Fatalf("powercap-bench: unknown workload %q", name)
		return nil
	}
}

func runSweep(opt options, name string) core.SweepResult {
	start := time.Now()
	fmt.Fprintf(os.Stderr, "powercap-bench: sweeping %s (%d trials x %d caps + baseline)...\n",
		name, opt.trials, len(core.PaperCaps()))
	res, err := core.Experiment{
		NewWorkload: sweepWorkload(opt, name),
		Trials:      opt.trials,
		Parallelism: opt.parallel,
		Memo:        opt.memo,
	}.Run()
	if err != nil {
		log.Fatalf("powercap-bench: %v", err)
	}
	fmt.Fprintf(os.Stderr, "powercap-bench: %s done in %v\n", name, time.Since(start).Round(time.Second))
	return res
}

func runProbe(opt options, capWatts float64, deepLadder bool) []stride.Point {
	cfg := stride.DefaultConfig()
	if capWatts > 0 {
		cfg = stride.CappedConfig()
	}
	if opt.fast || deepLadder {
		cfg.MaxArrayBytes = 8 << 20
		cfg.TouchesPerPoint = 512
	}
	if deepLadder {
		// The warm pass must cover more than the gated L3 (4 MiB) so
		// the measured prefix of large arrays really lives in the
		// duty-cycled DRAM.
		cfg.MaxArrayBytes = 8 << 20
		cfg.WarmCapTouches = 128 << 10
		cfg.TouchesPerPoint = 256
	}
	mcfg := machine.Romley()
	if deepLadder {
		mcfg.Ladder = machine.DeepMemoryGatingLadder()
	}
	p := stride.New(cfg)
	m := machine.New(mcfg)
	m.SetPolicy(capWatts)
	fmt.Fprintf(os.Stderr, "powercap-bench: stride probe (cap=%.0f W)...\n", capWatts)
	m.RunWorkload(p)
	return p.Points()
}

func writeCSV(opt options, name, content string) {
	if opt.csvDir == "" {
		return
	}
	path := filepath.Join(opt.csvDir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		log.Fatalf("powercap-bench: writing %s: %v", path, err)
	}
	fmt.Fprintf(os.Stderr, "powercap-bench: wrote %s\n", path)
}
