package main

import (
	"testing"
	"time"

	"nodecap/internal/ipmi"
	"nodecap/internal/machine"
	"nodecap/internal/nodeagent"
)

func TestWorkloadFactory(t *testing.T) {
	if f, err := workloadFactory("idle", 1); err != nil || f != nil {
		t.Errorf("idle: factory nil-ness wrong (err=%v, isNil=%v)", err, f == nil)
	}
	for _, name := range []string{"stereo", "sar"} {
		f, err := workloadFactory(name, 1)
		if err != nil || f == nil {
			t.Fatalf("%s: %v", name, err)
		}
		if w := f(); w == nil || w.CodePages() <= 0 {
			t.Errorf("%s produced bad workload", name)
		}
	}
	f, err := workloadFactory("mixed", 1)
	if err != nil {
		t.Fatal(err)
	}
	a, b := f(), f()
	if a.Name() == b.Name() {
		t.Errorf("mixed mode did not alternate: %s, %s", a.Name(), b.Name())
	}
	if _, err := workloadFactory("nope", 1); err == nil {
		t.Error("unknown workload accepted")
	}
}

// TestGracefulShutdown: the SIGTERM path serves every exchange it
// accepted, then refuses new sessions — a client mid-conversation sees
// a clean close, not a dropped frame, and a redial after shutdown
// fails.
func TestGracefulShutdown(t *testing.T) {
	agent := nodeagent.New(machine.Romley(), nodeagent.Options{})
	srv := ipmi.NewServer(agent)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	c, err := ipmi.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.GetPowerReading(); err != nil {
		t.Fatalf("exchange before shutdown: %v", err)
	}

	shutdown(srv, agent)

	if _, err := c.GetPowerReading(); err == nil {
		t.Error("exchange on a drained session succeeded after shutdown")
	}
	if c2, err := ipmi.DialTimeout(addr, 500*time.Millisecond, time.Second); err == nil {
		// A TCP dial may still connect before the OS reaps the socket;
		// the exchange must fail either way.
		if _, err := c2.GetPowerReading(); err == nil {
			t.Error("new session served after shutdown")
		}
		c2.Close()
	}
}
