package main

import "testing"

func TestWorkloadFactory(t *testing.T) {
	if f, err := workloadFactory("idle", 1); err != nil || f != nil {
		t.Errorf("idle: factory nil-ness wrong (err=%v, isNil=%v)", err, f == nil)
	}
	for _, name := range []string{"stereo", "sar"} {
		f, err := workloadFactory(name, 1)
		if err != nil || f == nil {
			t.Fatalf("%s: %v", name, err)
		}
		if w := f(); w == nil || w.CodePages() <= 0 {
			t.Errorf("%s produced bad workload", name)
		}
	}
	f, err := workloadFactory("mixed", 1)
	if err != nil {
		t.Fatal(err)
	}
	a, b := f(), f()
	if a.Name() == b.Name() {
		t.Errorf("mixed mode did not alternate: %s, %s", a.Name(), b.Name())
	}
	if _, err := workloadFactory("nope", 1); err == nil {
		t.Error("unknown workload accepted")
	}
}
