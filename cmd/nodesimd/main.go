// Command nodesimd runs one simulated power-managed node and exposes
// its BMC management endpoint over the IPMI-style TCP protocol, the
// way a real node's BMC is reachable through its dedicated NIC.
//
// Usage:
//
//	nodesimd -listen 127.0.0.1:9623 -workload stereo -seed 1
//
// Workloads: idle (default), stereo, sar, mixed (alternating). A busy
// node runs its workload back to back; dcmctl (or any IPMI client) can
// read power and push capping policies while it runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nodecap/internal/ipmi"
	"nodecap/internal/machine"
	"nodecap/internal/nodeagent"
	"nodecap/internal/workloads/sar"
	"nodecap/internal/workloads/stereo"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9623", "BMC management endpoint address")
	workload := flag.String("workload", "idle", "node load: idle, stereo, sar, or mixed")
	seed := flag.Uint64("seed", 1, "simulation seed")
	throttle := flag.Duration("throttle", time.Millisecond, "wall-clock pacing per idle slice (0 free-runs)")
	flag.Parse()

	factory, err := workloadFactory(*workload, *seed)
	if err != nil {
		log.Fatalf("nodesimd: %v", err)
	}

	cfg := machine.Romley()
	cfg.Seed = *seed
	agent := nodeagent.New(cfg, nodeagent.Options{
		Workload: factory,
		Throttle: *throttle,
	})
	defer agent.Stop()

	srv := ipmi.NewServer(agent)
	addr, err := srv.Listen(*listen)
	if err != nil {
		log.Fatalf("nodesimd: listen: %v", err)
	}
	defer srv.Close()
	log.Printf("nodesimd: BMC endpoint on %s (workload=%s seed=%d)", addr, *workload, *seed)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("nodesimd: shutting down")
}

// workloadFactory maps the flag to a workload constructor. The mixed
// mode alternates the two study applications, emulating the
// unpredictable load the paper's discussion says capping is best for.
func workloadFactory(name string, seed uint64) (func() machine.Workload, error) {
	switch name {
	case "idle":
		return nil, nil
	case "stereo":
		cfg := stereo.DefaultConfig()
		cfg.Seed = seed
		return func() machine.Workload { return stereo.New(cfg) }, nil
	case "sar":
		cfg := sar.DefaultConfig()
		cfg.Seed = seed
		return func() machine.Workload { return sar.New(cfg) }, nil
	case "mixed":
		scfg := stereo.DefaultConfig()
		scfg.Seed = seed
		rcfg := sar.DefaultConfig()
		rcfg.Seed = seed
		n := 0
		return func() machine.Workload {
			n++
			if n%2 == 1 {
				return stereo.New(scfg)
			}
			return sar.New(rcfg)
		}, nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}
