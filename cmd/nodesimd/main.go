// Command nodesimd runs one simulated power-managed node and exposes
// its BMC management endpoint over the IPMI-style TCP protocol, the
// way a real node's BMC is reachable through its dedicated NIC.
//
// Usage:
//
//	nodesimd -listen 127.0.0.1:9623 -workload stereo -seed 1
//
// Workloads: idle (default), stereo, sar, mixed (alternating). A busy
// node runs its workload back to back; dcmctl (or any IPMI client) can
// read power and push capping policies while it runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nodecap/internal/bmc"
	"nodecap/internal/faults"
	"nodecap/internal/ipmi"
	"nodecap/internal/machine"
	"nodecap/internal/nodeagent"
	"nodecap/internal/workloads/sar"
	"nodecap/internal/workloads/stereo"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9623", "BMC management endpoint address")
	workload := flag.String("workload", "idle", "node load: idle, stereo, sar, or mixed")
	seed := flag.Uint64("seed", 1, "simulation seed")
	throttle := flag.Duration("throttle", time.Millisecond, "wall-clock pacing per idle slice (0 free-runs)")
	tier := flag.String("tier", "low", "priority tier advertised to DCM: high (serving) or low (batch)")

	// Defensive-firmware knobs (see internal/bmc): -failsafe arms the
	// sensor watchdog with the study platform's plausibility envelope.
	failsafe := flag.Bool("failsafe", false, "arm the BMC's defensive sensor watchdog (FailSafeConfig)")
	faultK := flag.Int("failsafe-after", 0, "untrusted control periods before fail-safe (0 = FailSafeConfig default)")
	recoverM := flag.Int("recover-after", 0, "sane control periods required to leave fail-safe (0 = FailSafeConfig default)")
	stuckTicks := flag.Int("stuck-ticks", 0, "identical delivered readings before the sensor counts as stuck (0 = off)")

	// Sensor/actuator fault injection (see internal/faults.FaultyPlant):
	// a non-default value slides a fault wrapper between firmware and
	// silicon, for exercising the watchdog end to end.
	stuckAfter := flag.Int("sensor-stuck-after", 0, "freeze the power sensor after this many reads (0 = off)")
	dropout := flag.Float64("sensor-dropout", 0, "per-read probability the sensor delivers nothing")
	drift := flag.Float64("sensor-drift", 0, "cumulative sensor bias in watts per read")
	spikeProb := flag.Float64("sensor-spike-prob", 0, "per-read probability of an outlier reading")
	spikeWatts := flag.Float64("sensor-spike-watts", 1000, "outlier reading value in watts")
	ignoreAct := flag.Bool("ignore-actuations", false, "silently drop the BMC's P-state commands")
	flag.Parse()

	factory, err := workloadFactory(*workload, *seed)
	if err != nil {
		log.Fatalf("nodesimd: %v", err)
	}
	var wireTier uint8
	switch *tier {
	case "low":
		wireTier = ipmi.TierLow
	case "high":
		wireTier = ipmi.TierHigh
	default:
		log.Fatalf("nodesimd: unknown -tier %q (want high or low)", *tier)
	}

	cfg := machine.Romley()
	cfg.Seed = *seed
	if *failsafe {
		fs := bmc.FailSafeConfig()
		fs.ControlPeriod = cfg.BMC.ControlPeriod
		if *faultK > 0 {
			fs.FaultToleranceTicks = *faultK
		}
		if *recoverM > 0 {
			fs.RecoveryTicks = *recoverM
		}
		fs.StuckSensorTicks = *stuckTicks
		cfg.BMC = fs
	}
	profile := faults.PlantProfile{
		Seed:              int64(*seed),
		StuckAfterReads:   *stuckAfter,
		DropoutProb:       *dropout,
		DriftWattsPerRead: *drift,
		SpikeProb:         *spikeProb,
		SpikeWatts:        *spikeWatts,
		IgnoreActuations:  *ignoreAct,
	}
	if profile != (faults.PlantProfile{Seed: profile.Seed, SpikeWatts: profile.SpikeWatts}) {
		cfg.WrapPlant = func(p bmc.Plant) bmc.Plant { return faults.NewPlant(p, profile) }
		log.Printf("nodesimd: injecting sensor/actuator faults: %+v", profile)
	}
	agent := nodeagent.New(cfg, nodeagent.Options{
		Workload: factory,
		Throttle: *throttle,
		Tier:     wireTier,
	})

	srv := ipmi.NewServer(agent)
	addr, err := srv.Listen(*listen)
	if err != nil {
		agent.Stop()
		log.Fatalf("nodesimd: listen: %v", err)
	}
	log.Printf("nodesimd: BMC endpoint on %s (workload=%s seed=%d tier=%s)", addr, *workload, *seed, *tier)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	signal.Stop(sig)
	log.Printf("nodesimd: %v: draining BMC sessions and stopping workload", s)
	shutdown(srv, agent)
}

// shutdown is the SIGTERM/SIGINT path: the management endpoint stops
// accepting and waits out its handler goroutines before the node's
// workload and control loop halt, so no IPMI exchange is abandoned
// mid-dispatch against a dead agent.
func shutdown(srv *ipmi.Server, agent *nodeagent.Agent) {
	srv.Close()
	agent.Stop()
}

// workloadFactory maps the flag to a workload constructor. The mixed
// mode alternates the two study applications, emulating the
// unpredictable load the paper's discussion says capping is best for.
func workloadFactory(name string, seed uint64) (func() machine.Workload, error) {
	switch name {
	case "idle":
		return nil, nil
	case "stereo":
		cfg := stereo.DefaultConfig()
		cfg.Seed = seed
		return func() machine.Workload { return stereo.New(cfg) }, nil
	case "sar":
		cfg := sar.DefaultConfig()
		cfg.Seed = seed
		return func() machine.Workload { return sar.New(cfg) }, nil
	case "mixed":
		scfg := stereo.DefaultConfig()
		scfg.Seed = seed
		rcfg := sar.DefaultConfig()
		rcfg.Seed = seed
		n := 0
		return func() machine.Workload {
			n++
			if n%2 == 1 {
				return stereo.New(scfg)
			}
			return sar.New(rcfg)
		}, nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}
