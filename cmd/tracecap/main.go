// Command tracecap records workload operation traces and characterizes
// traces under power caps — the entry point for studying an
// application that exists only as a trace.
//
//	tracecap record -workload stereo -o app.trace
//	tracecap run -trace app.trace -caps 150,140,130,120
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"nodecap/internal/machine"
	"nodecap/internal/workloads/sar"
	"nodecap/internal/workloads/stereo"
	"nodecap/internal/workloads/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "run":
		err = run(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		log.Fatalf("tracecap: %v", err)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  tracecap record -workload stereo|sar [-scale small|full] -o FILE
  tracecap run -trace FILE [-caps W1,W2,...]
`)
	os.Exit(2)
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	workload := fs.String("workload", "stereo", "workload to record: stereo or sar")
	scale := fs.String("scale", "small", "input scale: small or full")
	out := fs.String("o", "", "output trace file")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("record: -o is required")
	}

	var w machine.Workload
	switch *workload + "/" + *scale {
	case "stereo/small":
		w = stereo.New(stereo.SmallConfig())
	case "stereo/full":
		w = stereo.New(stereo.DefaultConfig())
	case "sar/small":
		w = sar.New(sar.SmallConfig())
	case "sar/full":
		w = sar.New(sar.DefaultConfig())
	default:
		return fmt.Errorf("record: unknown workload/scale %s/%s", *workload, *scale)
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	res, err := trace.Record(machine.Romley(), w, f)
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("recorded %s: %v virtual, %.1f W average -> %s\n",
		res.Workload, res.ExecTime, res.AvgPowerWatts, *out)
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	traceFile := fs.String("trace", "", "trace file to characterize")
	capsFlag := fs.String("caps", "150,140,130,120", "comma-separated caps in watts")
	fs.Parse(args)
	if *traceFile == "" {
		return fmt.Errorf("run: -trace is required")
	}

	f, err := os.Open(*traceFile)
	if err != nil {
		return err
	}
	tr, err := trace.Read(f)
	f.Close()
	if err != nil {
		return err
	}

	caps := []float64{0}
	for _, s := range strings.Split(*capsFlag, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("run: bad cap %q", s)
		}
		caps = append(caps, v)
	}

	fmt.Printf("trace %q: %d operations\n\n", tr.Name, len(tr.Ops))
	fmt.Printf("%10s %12s %10s %10s %10s\n", "cap(W)", "time", "slowdown", "power(W)", "freq(MHz)")
	var baseline float64
	for _, cap := range caps {
		m := machine.New(machine.Romley())
		m.SetPolicy(cap)
		res := m.RunWorkload(trace.NewPlayer(tr))
		if cap == 0 {
			baseline = res.ExecTime.Seconds()
		}
		label := "uncapped"
		if cap > 0 {
			label = fmt.Sprintf("%.0f", cap)
		}
		slow := res.ExecTime.Seconds() / baseline
		fmt.Printf("%10s %12v %9.2fx %10.1f %10.0f\n",
			label, res.ExecTime, slow, res.AvgPowerWatts, res.AvgFreqMHz)
	}
	return nil
}
